"""Future semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.future import FutureError, FutureState, SimFuture


def test_initial_state():
    f = SimFuture()
    assert not f.is_ready
    assert f.state is FutureState.NOT_READY


def test_set_and_get():
    f = SimFuture()
    f.set_value(42)
    assert f.is_ready
    assert f.value() == 42


def test_get_before_ready_raises():
    with pytest.raises(FutureError):
        SimFuture().value()


def test_double_set_rejected():
    f = SimFuture()
    f.set_value(1)
    with pytest.raises(FutureError):
        f.set_value(2)
    with pytest.raises(FutureError):
        f.set_exception(RuntimeError("late"))


def test_exception_propagates():
    f = SimFuture()
    f.set_exception(ValueError("boom"))
    assert f.state is FutureState.EXCEPTION
    with pytest.raises(ValueError, match="boom"):
        f.value()


def test_callbacks_fire_on_set():
    f = SimFuture()
    seen = []
    f.on_ready(lambda fut: seen.append(("a", fut.value())))
    f.on_ready(lambda fut: seen.append(("b", fut.value())))
    f.set_value(7)
    assert seen == [("a", 7), ("b", 7)]


def test_callback_after_ready_fires_immediately():
    f = SimFuture()
    f.set_value(1)
    seen = []
    f.on_ready(lambda fut: seen.append(fut.value()))
    assert seen == [1]


def test_callbacks_fire_once():
    f = SimFuture()
    seen = []
    f.on_ready(lambda fut: seen.append(1))
    f.set_value(None)
    assert seen == [1]


def test_callback_on_exception():
    f = SimFuture()
    seen = []
    f.on_ready(lambda fut: seen.append(fut.state))
    f.set_exception(RuntimeError())
    assert seen == [FutureState.EXCEPTION]


def test_producer_task_recorded():
    marker = object()
    assert SimFuture(producer_task=marker).producer_task is marker


@given(st.lists(st.integers(), min_size=0, max_size=10))
def test_property_all_callbacks_see_same_value(values):
    f = SimFuture()
    seen = []
    for _ in values:
        f.on_ready(lambda fut: seen.append(fut.value()))
    f.set_value("payload")
    assert seen == ["payload"] * len(values)
