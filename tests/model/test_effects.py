"""Effect objects and the task-context API (Table II surface)."""

import pytest

from repro.model.context import TaskContext
from repro.model.effects import Await, AwaitAll, Compute, Lock, Spawn, Unlock, YieldNow
from repro.model.work import Work


class _FakeRuntime:
    name = "hpx"
    num_workers = 3

    def create_mutex(self):
        return "mutex-object"


@pytest.fixture
def ctx():
    return TaskContext(_FakeRuntime(), task=None)


def test_async_builds_spawn(ctx):
    def body(c):
        yield

    effect = ctx.async_(body, 1, 2, policy="fork", stack_bytes=4096)
    assert isinstance(effect, Spawn)
    assert effect.fn is body
    assert effect.args == (1, 2)
    assert effect.policy == "fork"
    assert effect.stack_bytes == 4096


def test_async_default_policy(ctx):
    effect = ctx.async_(lambda c: None)
    assert effect.policy == "async"


def test_wait_builds_await(ctx):
    marker = object()
    effect = ctx.wait(marker)
    assert isinstance(effect, Await)
    assert effect.future is marker


def test_wait_all_builds_awaitall(ctx):
    effect = ctx.wait_all([1, 2, 3])
    assert isinstance(effect, AwaitAll)
    assert effect.futures == (1, 2, 3)


def test_compute_accepts_work(ctx):
    w = Work(cpu_ns=5)
    assert ctx.compute(w).work is w


def test_compute_accepts_raw_ns(ctx):
    effect = ctx.compute(1500, membytes=64)
    assert isinstance(effect, Compute)
    assert effect.work == Work(cpu_ns=1500, membytes=64)


def test_compute_kwargs_forwarded(ctx):
    effect = ctx.compute(10, working_set=999)
    assert effect.work.working_set == 999


def test_lock_unlock(ctx):
    m = object()
    assert isinstance(ctx.lock(m), Lock)
    assert isinstance(ctx.unlock(m), Unlock)
    assert ctx.lock(m).mutex is m


def test_yield_now(ctx):
    assert isinstance(ctx.yield_now(), YieldNow)


def test_new_mutex_delegates(ctx):
    assert ctx.new_mutex() == "mutex-object"


def test_runtime_identity(ctx):
    assert ctx.runtime_name == "hpx"
    assert ctx.num_workers == 3
