"""Work descriptions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.work import CACHE_LINE, Work


def test_defaults():
    w = Work(cpu_ns=100)
    assert w.membytes == 0
    assert w.effective_working_set == 0


def test_validation():
    with pytest.raises(ValueError):
        Work(cpu_ns=-1)
    with pytest.raises(ValueError):
        Work(cpu_ns=0, membytes=-5)
    with pytest.raises(ValueError):
        Work(cpu_ns=0, data_rd_fraction=0.5, code_rd_fraction=0.5, rfo_fraction=0.5)


def test_working_set_defaults_to_membytes():
    assert Work(cpu_ns=0, membytes=4096).effective_working_set == 4096
    assert Work(cpu_ns=0, membytes=4096, working_set=128).effective_working_set == 128


def test_offcore_requests_split():
    w = Work(cpu_ns=0, membytes=6400)  # 100 lines
    data, code, rfo = w.offcore_requests()
    assert (data, code, rfo) == (70, 5, 25)


def test_offcore_requests_zero():
    assert Work(cpu_ns=10).offcore_requests() == (0, 0, 0)


def test_scaled_traffic():
    w = Work(cpu_ns=100, membytes=1000)
    scaled = w.scaled_traffic(1.5)
    assert scaled.cpu_ns == 100
    assert scaled.membytes == 1500


def test_scaled_full():
    w = Work(cpu_ns=100, membytes=1000)
    scaled = w.scaled(2.0)
    assert scaled.cpu_ns == 200
    assert scaled.membytes == 2000


def test_scale_identity_returns_self():
    w = Work(cpu_ns=100, membytes=1000)
    assert w.scaled(1.0) is w
    assert w.scaled_traffic(1.0) is w


def test_frozen():
    w = Work(cpu_ns=100)
    with pytest.raises(AttributeError):
        w.cpu_ns = 5  # type: ignore[misc]


@given(st.integers(min_value=0, max_value=10**9))
def test_property_request_split_sums_to_lines(membytes):
    w = Work(cpu_ns=0, membytes=membytes)
    data, code, rfo = w.offcore_requests()
    assert data + code + rfo == membytes // CACHE_LINE
    assert min(data, code, rfo) >= 0


@given(
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=0.1, max_value=5.0),
)
def test_property_scaling_proportional(membytes, factor):
    w = Work(cpu_ns=1000, membytes=membytes)
    scaled = w.scaled(factor)
    assert scaled.cpu_ns == round(1000 * factor)
    assert scaled.membytes == round(membytes * factor)
