"""External-tool models (Table I)."""


from repro.api import Session, WorkloadSpec
from repro.tools import HPCTOOLKIT, TAU, ToolOutcome, run_with_tool
from repro.tools.tau import tau_with_table


def test_tau_thread_table_default():
    assert TAU.max_threads == 128


def test_tau_segv_when_table_exhausted():
    """Any benchmark spawning more threads than TAU's table dies."""
    result = run_with_tool("sort", TAU, cores=4, params={"n": 4096, "cutoff": 64})
    assert result.outcome is ToolOutcome.SEGV


def test_tau_completes_within_table():
    result = run_with_tool("fib", TAU, cores=4, params={"n": 8})  # 67 tasks
    assert result.outcome is ToolOutcome.COMPLETED
    assert result.threads_created <= 128


def test_tau_overhead_is_large():
    base = Session(runtime="std", cores=4).run(
        WorkloadSpec.parse("fib"), params={"n": 8}, collect_counters=False
    )
    instrumented = run_with_tool("fib", TAU, cores=4, params={"n": 8})
    overhead = instrumented.overhead_percent(base.exec_time_ns)
    assert overhead is not None
    assert overhead > 300  # hundreds of percent at minimum


def test_tau_with_larger_table_crashes_on_memory():
    """The paper: even a 64k table just converts SegV into a crash —
    per-thread measurement memory exhausts the budget instead."""
    big_tau = tau_with_table(64_000)
    result = run_with_tool("fib", big_tau, cores=4, params={"n": 16})
    assert result.outcome in (ToolOutcome.SEGV, ToolOutcome.ABORT)


def test_hpctoolkit_no_table_limit():
    assert HPCTOOLKIT.max_threads is None


def test_hpctoolkit_huge_overhead():
    base = Session(runtime="std", cores=4).run(
        WorkloadSpec.parse("strassen"), params={"n": 64, "cutoff": 16}, collect_counters=False
    )
    result = run_with_tool("strassen", HPCTOOLKIT, cores=4, params={"n": 64, "cutoff": 16})
    assert result.outcome is ToolOutcome.COMPLETED
    overhead = result.overhead_percent(base.exec_time_ns)
    assert overhead is not None and overhead > 1000


def test_hpctoolkit_crashes_on_thread_explosion():
    """Per-thread measurement memory lowers the effective budget."""
    result = run_with_tool("fib", HPCTOOLKIT, cores=4, params={"n": 16})
    assert result.outcome in (ToolOutcome.SEGV, ToolOutcome.ABORT)


def test_overhead_percent_none_when_crashed():
    result = run_with_tool("fib", TAU, cores=4, params={"n": 14})
    assert result.outcome is not ToolOutcome.COMPLETED
    assert result.overhead_percent(10**6) is None


def test_hpx_counters_beat_tools_on_same_metrics():
    """The paper's core argument: the runtime's own counters collect the
    data the tools crash trying to collect, at ~1% perturbation."""
    session = Session(runtime="hpx", cores=4)
    plain = session.run(WorkloadSpec.parse("fib"), params={"n": 14}, collect_counters=False)
    counted = session.run(WorkloadSpec.parse("fib"), params={"n": 14})
    perturbation = (counted.exec_time_ns - plain.exec_time_ns) / plain.exec_time_ns
    assert perturbation < 0.35  # vs TAU/HPCT: crash or >300%
    assert counted.counters  # and we actually got the measurements


def test_tool_timeout_outcome():
    """A tool whose budget is shorter than the instrumented run times out."""
    from dataclasses import replace

    slow_tolerance = replace(HPCTOOLKIT, timeout_ns=1_000_000)  # 1 ms budget
    result = run_with_tool("round", slow_tolerance, cores=4)
    assert result.outcome is ToolOutcome.TIMEOUT
    assert result.exec_time_ns <= slow_tolerance.timeout_ns * 2
