"""Suite registry and benchmark metadata."""

import pytest

from repro.inncabs.base import DEFAULT_SEED, effective_locality_factor
from repro.inncabs.suite import available_benchmarks, get_benchmark

PAPER_TABLE_V = {
    "alignment": ("loop-like", "none", 2748.0),
    "health": ("loop-like", "none", 1.02),
    "sparselu": ("loop-like", "none", 988.0),
    "fft": ("recursive-balanced", "none", 1.03),
    "fib": ("recursive-balanced", "none", 1.37),
    "pyramids": ("recursive-balanced", "none", 246.0),
    "sort": ("recursive-balanced", "none", 52.1),
    "strassen": ("recursive-balanced", "none", 107.0),
    "floorplan": ("recursive-unbalanced", "atomic pruning", 4.60),
    "nqueens": ("recursive-unbalanced", "none", 28.1),
    "qap": ("recursive-unbalanced", "atomic pruning", 1.00),
    "uts": ("recursive-unbalanced", "none", 1.37),
    "intersim": ("co-dependent", "mult. mutex/task", 3.46),
    "round": ("co-dependent", "2 mutex/task", 9671.0),
}


def test_fourteen_benchmarks():
    assert len(available_benchmarks()) == 14
    assert set(available_benchmarks()) == set(PAPER_TABLE_V)


@pytest.mark.parametrize("name", sorted(PAPER_TABLE_V))
def test_metadata_matches_table_v(name):
    structure, sync, duration = PAPER_TABLE_V[name]
    info = get_benchmark(name).info
    assert info.structure == structure
    assert info.synchronization == sync
    assert info.paper_task_duration_us == duration


def test_get_unknown_benchmark():
    with pytest.raises(KeyError, match="available"):
        get_benchmark("linpack")


def test_params_with_defaults():
    bench = get_benchmark("fib")
    merged = bench.params_with_defaults({"n": 12})
    assert merged["n"] == 12
    assert merged["seed"] == DEFAULT_SEED
    assert "leaf_ns" in merged


def test_params_unknown_rejected():
    with pytest.raises(ValueError, match="unknown parameters"):
        get_benchmark("fib").params_with_defaults({"zzz": 1})


def test_locality_factor_profile():
    assert effective_locality_factor(1.45, 1) == 1.0
    assert effective_locality_factor(1.45, 2) == 1.45
    assert effective_locality_factor(1.45, 10) == 1.45
    mid = effective_locality_factor(1.45, 14)
    assert 1.0 < mid < 1.45
    assert effective_locality_factor(1.45, 18) == 1.0
    assert effective_locality_factor(1.0, 8) == 1.0


def test_only_pyramids_has_locality_penalty():
    for name in available_benchmarks():
        factor = get_benchmark(name).info.hpx_locality_factor
        if name == "pyramids":
            assert factor > 1.0
        else:
            assert factor == 1.0


def test_presets_cover_every_benchmark():
    from repro.inncabs.presets import PRESETS, preset_params, validate_presets

    assert set(PRESETS) == set(available_benchmarks())
    validate_presets()
    assert preset_params("fib", "default") == {}
    assert preset_params("fib", "small") == {"n": 12}


def test_preset_unknown_rejected():
    from repro.inncabs.presets import preset_params

    with pytest.raises(KeyError, match="preset"):
        preset_params("fib", "gigantic")
    with pytest.raises(KeyError, match="available"):
        preset_params("linpack", "small")


def test_small_presets_run_quickly_and_verify():
    from repro.api import Session, WorkloadSpec
    from repro.inncabs.presets import preset_params

    session = Session(runtime="hpx", cores=2)
    for name in ("fib", "sort", "qap"):
        result = session.run(WorkloadSpec.parse(name), params=preset_params(name, "small"))
        assert result.verified
