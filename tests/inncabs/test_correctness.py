"""Every benchmark computes a verified result on both runtimes.

Small inputs keep the matrix fast; correctness must hold regardless of
runtime, core count or scheduling order.
"""

import pytest

from repro.api import Session, WorkloadSpec

SMALL_PARAMS = {
    "alignment": {"nseq": 5, "seqlen": 60},
    "fft": {"n": 256, "cutoff": 4},
    "fib": {"n": 12},
    "floorplan": {"cutoff": 3},
    "health": {"levels": 3, "branching": 3, "steps": 3},
    "intersim": {"rounds": 4, "tasks_per_round": 16, "interchanges": 6},
    "nqueens": {"n": 8, "cutoff": 2},
    "pyramids": {"width": 1024, "steps": 32, "chunk": 8, "block": 256},
    "qap": {"n": 6, "cutoff": 2},
    "round": {"players": 6, "rounds": 3},
    "sort": {"n": 4096, "cutoff": 256},
    "sparselu": {"nb": 5, "bs": 16},
    "strassen": {"n": 64, "cutoff": 16},
    "uts": {"b0": 10, "m": 3, "q": 0.3, "max_depth": 6},
}


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
@pytest.mark.parametrize("cores", [1, 3])
def test_hpx_verified(name, cores):
    result = Session(runtime="hpx", cores=cores).run(WorkloadSpec.parse(name), params=SMALL_PARAMS[name])
    assert not result.aborted
    assert result.verified, f"{name} failed verification on hpx/{cores}"
    assert result.tasks_executed == result.tasks_created
    assert result.exec_time_ns > 0


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_std_verified(name):
    result = Session(runtime="std", cores=4).run(WorkloadSpec.parse(name), params=SMALL_PARAMS[name])
    assert not result.aborted
    assert result.verified, f"{name} failed verification on std/4"


@pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
def test_results_deterministic(name):
    a = Session(runtime="hpx", cores=2).run(WorkloadSpec.parse(name), params=SMALL_PARAMS[name])
    b = Session(runtime="hpx", cores=2).run(WorkloadSpec.parse(name), params=SMALL_PARAMS[name])
    assert a.exec_time_ns == b.exec_time_ns
    assert a.counters == b.counters


def test_unknown_runtime_rejected():
    with pytest.raises(ValueError, match="runtime"):
        Session(runtime="tbb", cores=1)


def test_keep_result():
    result = Session(runtime="hpx", cores=1).run(WorkloadSpec.parse("fib"), params={"n": 10}, keep_result=True)
    assert result.result == 55


def test_counter_lookup_error_lists_names():
    result = Session(runtime="hpx", cores=1).run(WorkloadSpec.parse("fib"), params={"n": 8})
    with pytest.raises(KeyError, match="/threads"):
        result.counter("/no/such/counter")


def test_collect_counters_false_is_faster():
    session = Session(runtime="hpx", cores=1)
    with_counters = session.run(WorkloadSpec.parse("fib"), params={"n": 12})
    without = session.run(WorkloadSpec.parse("fib"), params={"n": 12}, collect_counters=False)
    assert without.counters == {}
    assert without.exec_time_ns < with_counters.exec_time_ns
