"""Algorithm-level correctness of the benchmark kernels."""

import itertools

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.inncabs.alignment import GAP, MATCH, nw_score, nw_score_reference
from repro.inncabs.fib import fib_reference
from repro.inncabs.floorplan import DEFAULT_CELLS, floorplan_optimum, solve_sequential
from repro.inncabs.health import health_reference
from repro.inncabs.intersim import intersim_reference
from repro.inncabs.pyramids import advance_window, pyramids_reference, stencil_step
from repro.inncabs.qap import make_instance, qap_optimum
from repro.inncabs.round import round_reference
from repro.inncabs.sort import merge_sorted
from repro.inncabs.sparselu import build_matrix, sparselu_sequential
from repro.inncabs.uts import uts_reference_count


def test_fib_reference():
    assert [fib_reference(n) for n in range(10)] == [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]
    assert fib_reference(30) == 832040


@given(
    arrays(np.int8, st.integers(1, 25), elements=st.integers(0, 3)),
    arrays(np.int8, st.integers(1, 25), elements=st.integers(0, 3)),
)
def test_property_nw_score_matches_scalar_dp(a, b):
    assert nw_score(a, b) == nw_score_reference(a, b)


def test_nw_self_alignment_is_perfect():
    seq = np.array([1, 2, 3, 4, 5], dtype=np.int8)
    assert nw_score(seq, seq) == MATCH * len(seq)


def test_nw_empty_vs_gap_chain():
    a = np.array([1, 2, 3], dtype=np.int8)
    b = np.array([], dtype=np.int8)
    assert nw_score_reference(a, b) == 3 * GAP


@given(
    arrays(np.int64, st.integers(0, 30), elements=st.integers(-1000, 1000)),
    arrays(np.int64, st.integers(0, 30), elements=st.integers(-1000, 1000)),
)
def test_property_merge_sorted(a, b):
    a.sort()
    b.sort()
    merged = merge_sorted(a, b)
    assert len(merged) == len(a) + len(b)
    assert np.all(merged[:-1] <= merged[1:])
    assert sorted(merged.tolist()) == sorted(a.tolist() + b.tolist())


@given(
    st.integers(min_value=8, max_value=64),
    st.integers(min_value=1, max_value=6),
)
def test_property_trapezoid_equals_global_stencil(width, k):
    rng = np.random.default_rng(0)
    grid = rng.standard_normal(width)
    # Whole domain as one window, both sides clamped == k global steps.
    local = advance_window(grid.copy(), k, True, True)
    reference = pyramids_reference(grid, k)
    assert np.allclose(local, reference)


def test_stencil_step_conserves_shape():
    grid = np.ones(16)
    assert np.allclose(stencil_step(grid), grid)  # fixed point of smoothing


def test_floorplan_optimum_vs_exhaustive_subset():
    cells = DEFAULT_CELLS[:3]
    best = [1 << 30]
    nodes = solve_sequential(cells, 0, (), best)
    assert nodes > 1
    assert best[0] == floorplan_optimum(cells)
    assert best[0] > 0


def test_floorplan_single_cell_area():
    cells = (((4, 1), (2, 2)),)
    assert floorplan_optimum(cells) == 4  # both shapes cover 4 area; bbox 4


def test_qap_optimum_matches_brute_force():
    flow, dist = make_instance(6, seed=123)
    n = len(flow)
    brute = min(
        sum(
            flow[i][j] * dist[p[i]][p[j]]
            for i in range(n)
            for j in range(n)
        )
        for p in itertools.permutations(range(n))
    )
    assert qap_optimum(flow, dist) == brute


def test_qap_instance_symmetric_zero_diag():
    flow, dist = make_instance(7, seed=5)
    for i in range(7):
        assert flow[i][i] == 0
        for j in range(7):
            assert flow[i][j] == flow[j][i]
            assert dist[i][j] == dist[j][i]


def test_uts_reference_deterministic():
    a = uts_reference_count(42, 10, 3, 0.3, 8)
    b = uts_reference_count(42, 10, 3, 0.3, 8)
    assert a == b
    assert a >= 11  # root + b0 children at least


def test_uts_depth_cap():
    shallow = uts_reference_count(42, 5, 4, 0.9, 2)
    # depth <= 2: root + 5 children + at most 5*4 grandchildren
    assert shallow <= 1 + 5 + 20


def test_health_reference_deterministic_and_conserving():
    total, treated, waiting, referred = health_reference(3, 3, 4, seed=7)
    assert total == treated
    again = health_reference(3, 3, 4, seed=7)
    assert again == (total, treated, waiting, referred)


def test_intersim_reference_counts():
    counts = intersim_reference(3, 8, 5)
    assert sum(counts) == 2 * 3 * 8  # two increments per task


def test_round_reference_scores():
    scores = round_reference(4, 3)
    assert sum(scores) == 3 * 4 * 3  # 3 points per task
    assert all(s == 9 for s in scores)  # symmetric ring


def test_sparselu_sequential_factorisation():
    blocks = build_matrix(4, 8, seed=3)
    factored = sparselu_sequential(blocks, 4)
    # Reconstruct L @ U and compare against the assembled original.
    nb, bs = 4, 8
    dense = np.zeros((nb * bs, nb * bs))
    for (i, j), block in blocks.items():
        dense[i * bs : (i + 1) * bs, j * bs : (j + 1) * bs] = block
    lower = np.eye(nb * bs)
    upper = np.zeros((nb * bs, nb * bs))
    for (i, j), block in factored.items():
        bi, bj = i * bs, j * bs
        if i > j:
            lower[bi : bi + bs, bj : bj + bs] = block
        elif i < j:
            upper[bi : bi + bs, bj : bj + bs] = block
        else:
            lower[bi : bi + bs, bj : bj + bs] = np.tril(block, -1) + np.eye(bs)
            upper[bi : bi + bs, bj : bj + bs] = np.triu(block)
    assert np.allclose(lower @ upper, dense, atol=1e-8)
