"""Per-benchmark structural details beyond end-to-end verification."""

from repro.api import Session, WorkloadSpec
from repro.inncabs.fib import FibBenchmark


def run_hpx(name, *, cores=2, params=None, keep_result=False):
    session = Session(runtime="hpx", cores=cores)
    return session.run(WorkloadSpec.parse(name), params=params, keep_result=keep_result)


def test_fib_task_count_formula():
    assert FibBenchmark.task_count(1) == 1
    assert FibBenchmark.task_count(2) == 3
    # fib(n) call-tree size: 2*F(n+1) - 1
    assert FibBenchmark.task_count(10) == 2 * 89 - 1


def test_fib_run_matches_task_count():
    result = run_hpx("fib", params={"n": 12})
    # fib's root task is the tree root itself (no separate driver).
    assert result.tasks_executed == FibBenchmark.task_count(12)


def test_alignment_pair_task_count():
    result = run_hpx("alignment", params={"nseq": 6, "seqlen": 40})
    # C(6,2)=15 pair tasks + the root.
    assert result.tasks_executed == 16


def test_round_has_exactly_paper_task_count():
    """Table I: round runs 512 tasks."""
    result = run_hpx("round")
    assert result.tasks_executed == 513  # 512 + root


def test_intersim_task_count():
    result = run_hpx("intersim", params={"rounds": 3, "tasks_per_round": 10, "interchanges": 4})
    assert result.tasks_executed == 31  # 30 + root


def test_floorplan_task_limit_caps_spawning():
    limited = run_hpx("floorplan", params={"task_limit": 10})
    unlimited = run_hpx("floorplan")
    assert limited.verified and unlimited.verified  # same optimum either way
    assert limited.tasks_created < unlimited.tasks_created


def test_floorplan_parallel_explores_at_least_sequential_frontier():
    """The paper's Floorplan observation: execution order changes how
    many nodes branch-and-bound explores (HPX's ordering explored 100x
    more).  Node counts may differ across core counts; the optimum may
    not."""
    r1 = run_hpx("floorplan", cores=1, keep_result=True)
    r8 = run_hpx("floorplan", cores=8, keep_result=True)
    area1, nodes1 = r1.result
    area8, nodes8 = r8.result
    assert area1 == area8  # optimum is order-independent
    assert nodes1 > 0 and nodes8 > 0


def test_sort_cutoff_controls_task_count():
    small = run_hpx("sort", params={"n": 1 << 14, "cutoff": 1 << 12})
    fine = run_hpx("sort", params={"n": 1 << 14, "cutoff": 1 << 10})
    assert fine.tasks_executed > 2 * small.tasks_executed
    assert small.verified and fine.verified


def test_strassen_task_count_seven_way():
    result = run_hpx("strassen", params={"n": 128, "cutoff": 32})
    # Depth-2 recursion: 1 + 7 + 49 strassen tasks + root driver.
    assert result.tasks_executed == 1 + 7 + 49 + 1


def test_uts_tree_size_equals_tasks():
    result = run_hpx("uts", params={"b0": 15, "m": 3, "q": 0.3, "max_depth": 8}, keep_result=True)
    assert result.result == result.tasks_executed  # one task per node


def test_health_task_count():
    result = run_hpx("health", params={"levels": 3, "branching": 2, "steps": 5})
    # 7 villages x 5 steps + root.
    assert result.tasks_executed == 36


def test_qap_smaller_cutoff_fewer_tasks():
    shallow = run_hpx("qap", params={"n": 7, "cutoff": 2})
    deep = run_hpx("qap", params={"n": 7, "cutoff": 4})
    assert shallow.tasks_created < deep.tasks_created
    assert shallow.verified and deep.verified


def test_pyramids_chunking_preserves_result():
    for chunk in (4, 16):
        result = run_hpx(
            "pyramids",
            cores=3,
            params={"width": 2048, "steps": 32, "chunk": chunk, "block": 512},
        )
        assert result.verified


def test_fft_power_of_two_sizes():
    for n in (64, 256):
        result = run_hpx("fft", params={"n": n, "cutoff": 4})
        assert result.verified


def test_seed_changes_results_not_correctness():
    a = run_hpx("sort", params={"n": 4096, "cutoff": 512, "seed": 1})
    b = run_hpx("sort", params={"n": 4096, "cutoff": 512, "seed": 2})
    assert a.verified and b.verified
    assert a.exec_time_ns != b.exec_time_ns  # different data, different merges
