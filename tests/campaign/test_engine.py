"""Engine semantics: determinism, caching, resume-after-interrupt."""

from __future__ import annotations

import dataclasses

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.engine import run_campaign
from repro.campaign.spec import CampaignSpec


def test_parallel_is_bit_identical_to_serial(small_spec, small_run):
    """--jobs 4 must reproduce --jobs 1 byte for byte (per cell)."""
    parallel = run_campaign(small_spec, jobs=4)
    assert parallel.artifact.cells_json() == small_run.artifact.cells_json()


def test_repeated_run_is_all_cache_hits(small_spec, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    first = run_campaign(small_spec, jobs=2, cache=cache)
    assert first.stats.executed == first.stats.total
    second = run_campaign(small_spec, jobs=2, cache=ResultCache(tmp_path / "cache"))
    assert second.stats.cache_hits == second.stats.total
    assert second.stats.executed == 0
    assert second.stats.hit_rate == 1.0
    assert second.artifact.cells_json() == first.artifact.cells_json()


def test_growing_the_matrix_reuses_existing_cells(small_spec, tmp_path):
    """Cache keys ignore matrix shape: new cores only run the new cells."""
    cache_dir = tmp_path / "cache"
    narrow = dataclasses.replace(small_spec, core_counts=(1,))
    run_campaign(narrow, cache=ResultCache(cache_dir))
    wide = run_campaign(small_spec, cache=ResultCache(cache_dir))
    per_cores = len(small_spec.benchmarks) * len(small_spec.runtimes) * small_spec.samples
    assert wide.stats.cache_hits == per_cores  # the cores=1 column
    assert wide.stats.executed == wide.stats.total - per_cores


def test_interrupted_campaign_resumes(small_spec, tmp_path):
    """Cells finished before an interrupt are not re-executed."""
    cache_dir = tmp_path / "cache"
    interrupt_after = 3
    executed = [0]

    def interrupting_progress(cell, result, from_cache):
        executed[0] += 1
        if executed[0] == interrupt_after:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_campaign(small_spec, cache=ResultCache(cache_dir), progress=interrupting_progress)
    resumed = run_campaign(small_spec, cache=ResultCache(cache_dir))
    assert resumed.stats.cache_hits == interrupt_after
    assert resumed.stats.executed == resumed.stats.total - interrupt_after


def test_cacheless_runs_execute_everything(small_spec, small_run):
    assert small_run.stats.cache_hits == 0
    assert small_run.stats.executed == small_run.stats.total
    assert small_run.stats.total == len(list(small_spec.cells()))


def test_progress_reports_cache_state(small_spec, tmp_path):
    cache_dir = tmp_path / "cache"
    run_campaign(small_spec, cache=ResultCache(cache_dir))
    seen = []

    def progress(cell, result, from_cache):
        seen.append((cell, from_cache))

    run_campaign(small_spec, cache=ResultCache(cache_dir), progress=progress)
    assert len(seen) == len(list(small_spec.cells()))
    assert all(from_cache for _, from_cache in seen)


def test_abort_cells_counted(small_run):
    """The scaled std thread budget makes some fib/std cells abort."""
    aborted = [cr for cr in small_run.artifact.cells if cr.result["aborted"]]
    assert small_run.stats.aborted == len(aborted)


def test_invalid_samples_rejected():
    with pytest.raises(ValueError, match="samples"):
        CampaignSpec(benchmarks=("fib",), samples=0)
