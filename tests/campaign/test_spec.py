"""CampaignSpec: cell enumeration, cache keys, serialization."""

from __future__ import annotations

import dataclasses

import pytest

from repro.campaign.spec import CampaignSpec, cell_cache_key
from repro.experiments.config import ExperimentConfig
from repro.kernel.config import StdParams
from repro.runtime.config import HpxParams


def make_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        benchmarks=("fib", "sort"),
        runtimes=("hpx", "std"),
        core_counts=(1, 2),
        samples=2,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def test_cells_enumerated_in_canonical_order():
    spec = make_spec()
    cells = list(spec.cells())
    assert len(cells) == 2 * 2 * 2 * 2
    assert [c.benchmark for c in cells[:8]] == ["fib"] * 8
    first = cells[0]
    assert (first.runtime, first.cores, first.sample) == ("hpx", 1, 0)
    # seeds vary per sample exactly like the serial harness always did
    assert cells[0].seed == spec.seed
    assert cells[1].seed == spec.seed + 1


def test_cell_params_overlay_preset_and_seed():
    spec = make_spec(preset="small", params={"cutoff": 99})
    cell = next(iter(spec.cells()))
    params = spec.cell_params(cell)
    assert params["n"] == 12  # fib small preset
    assert params["cutoff"] == 99  # explicit override wins
    assert params["seed"] == cell.seed


def test_unknown_runtime_rejected():
    with pytest.raises(ValueError, match="unknown runtime"):
        make_spec(runtimes=("hpx", "tbb"))


def test_cache_key_stable_across_matrix_shape():
    """Growing the campaign must not invalidate existing cells."""
    small = make_spec(benchmarks=("fib",), core_counts=(1,))
    big = make_spec(benchmarks=("fib", "sort"), core_counts=(1, 2, 4))
    cell = next(iter(small.cells()))
    assert cell_cache_key(small, cell) == cell_cache_key(big, cell)


def test_cache_key_sensitive_to_inputs():
    spec = make_spec()
    cell = next(iter(spec.cells()))
    baseline = cell_cache_key(spec, cell)
    assert cell_cache_key(make_spec(seed=1), dataclasses.replace(cell, seed=1)) != baseline
    assert cell_cache_key(make_spec(params={"n": 9}), cell) != baseline
    faster = dataclasses.replace(spec.hpx, context_switch_ns=1)
    assert cell_cache_key(make_spec(hpx=faster), cell) != baseline


def test_cache_key_ignores_other_runtimes_params():
    """An hpx cell survives a std::async recalibration, and vice versa."""
    spec = make_spec()
    hpx_cell = next(c for c in spec.cells() if c.runtime == "hpx")
    std_cell = next(c for c in spec.cells() if c.runtime == "std")
    retuned = make_spec(
        std=StdParams(thread_create_ns=1),
        hpx=HpxParams(task_create_ns=1),
    )
    assert cell_cache_key(spec, hpx_cell) != cell_cache_key(retuned, hpx_cell)
    assert cell_cache_key(spec, std_cell) != cell_cache_key(retuned, std_cell)
    only_std_retuned = make_spec(std=StdParams(thread_create_ns=1))
    assert cell_cache_key(spec, hpx_cell) == cell_cache_key(only_std_retuned, hpx_cell)
    only_hpx_retuned = make_spec(hpx=HpxParams(task_create_ns=1))
    assert cell_cache_key(spec, std_cell) == cell_cache_key(only_hpx_retuned, std_cell)


def test_from_config_matches_harness_defaults():
    config = ExperimentConfig(samples=4, core_counts=(1, 8))
    spec = CampaignSpec.from_config(config, benchmarks=("uts",), runtimes=("hpx",))
    assert spec.core_counts == (1, 8)
    assert spec.samples == 4
    assert spec.seed == config.seed
    assert spec.machine == config.machine
    assert spec.std == config.std  # the scaled-budget StdParams


def test_json_roundtrip_preserves_identity():
    spec = make_spec(preset="small", params={"n": 10}, counter_specs=("/runtime/uptime",))
    clone = CampaignSpec.from_json_dict(spec.to_json_dict())
    assert clone == spec
    assert clone.spec_id() == spec.spec_id()


def test_cache_key_sensitive_to_platform():
    """Two cells differing only in platform must never share a result."""
    from repro.platform import get_platform

    spec = make_spec()
    cell = next(iter(spec.cells()))
    keys = {cell_cache_key(spec, cell)}
    for name in ("desktop-1x8", "epyc-2x64", "hybrid-4p8e"):
        keys.add(cell_cache_key(make_spec(platform=get_platform(name)), cell))
    assert len(keys) == 4


def test_spec_accepts_legacy_machinespec():
    from repro.simcore.machine import MachineSpec

    spec = make_spec(platform=MachineSpec())
    assert spec.platform == MachineSpec().to_platform()
    assert spec.machine == spec.platform  # legacy alias


def test_from_json_dict_accepts_legacy_machine_key():
    """Pre-platform artifacts (e.g. the committed CI baseline) carry a
    flat MachineSpec dict under "machine"; they must still load."""
    import dataclasses as _dc

    from repro.simcore.machine import MachineSpec

    data = make_spec().to_json_dict()
    assert "platform" in data and "machine" not in data
    del data["platform"]
    data["machine"] = _dc.asdict(MachineSpec())
    spec = CampaignSpec.from_json_dict(data)
    assert spec.platform == MachineSpec().to_platform()
