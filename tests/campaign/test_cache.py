"""ResultCache: hit/miss semantics and corruption handling."""

from __future__ import annotations

import json

from repro.campaign.cache import CACHE_PAYLOAD_SCHEMA, ResultCache

KEY = "ab" + "0" * 62
RESULT = {"aborted": False, "exec_time_ns": 123, "counters": {"/x": 1.0}}


def test_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.load(KEY) is None
    assert cache.misses == 1
    cache.store(KEY, RESULT)
    assert cache.load(KEY) == RESULT
    assert cache.hits == 1
    assert len(cache) == 1


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store(KEY, RESULT)
    cache.path_for(KEY).write_text("{truncated", encoding="utf-8")
    assert cache.load(KEY) is None
    assert cache.invalid == 1


def test_key_mismatch_is_a_miss(tmp_path):
    """An entry whose embedded key disagrees with its path is stale."""
    cache = ResultCache(tmp_path)
    cache.store(KEY, RESULT)
    payload = {"schema": CACHE_PAYLOAD_SCHEMA, "key": "f" * 64, "result": RESULT}
    cache.path_for(KEY).write_text(json.dumps(payload), encoding="utf-8")
    assert cache.load(KEY) is None
    assert cache.invalid == 1


def test_schema_bump_invalidates(tmp_path):
    cache = ResultCache(tmp_path)
    payload = {"schema": CACHE_PAYLOAD_SCHEMA + 1, "key": KEY, "result": RESULT}
    path = cache.path_for(KEY)
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps(payload), encoding="utf-8")
    assert cache.load(KEY) is None
    assert cache.invalid == 1


def test_store_is_atomic_no_temp_residue(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store(KEY, RESULT)
    leftovers = [p for p in (tmp_path / KEY[:2]).iterdir() if p.suffix == ".tmp"]
    assert leftovers == []
