"""ResultCache: hit/miss semantics and corruption handling."""

from __future__ import annotations

import json

from repro.campaign.cache import CACHE_PAYLOAD_SCHEMA, ResultCache

KEY = "ab" + "0" * 62
RESULT = {"aborted": False, "exec_time_ns": 123, "counters": {"/x": 1.0}}


def test_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.load(KEY) is None
    assert cache.misses == 1
    cache.store(KEY, RESULT)
    assert cache.load(KEY) == RESULT
    assert cache.hits == 1
    assert len(cache) == 1


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store(KEY, RESULT)
    cache.path_for(KEY).write_text("{truncated", encoding="utf-8")
    assert cache.load(KEY) is None
    assert cache.invalid == 1


def test_key_mismatch_is_a_miss(tmp_path):
    """An entry whose embedded key disagrees with its path is stale."""
    cache = ResultCache(tmp_path)
    cache.store(KEY, RESULT)
    payload = {"schema": CACHE_PAYLOAD_SCHEMA, "key": "f" * 64, "result": RESULT}
    cache.path_for(KEY).write_text(json.dumps(payload), encoding="utf-8")
    assert cache.load(KEY) is None
    assert cache.invalid == 1


def test_schema_bump_invalidates(tmp_path):
    cache = ResultCache(tmp_path)
    payload = {"schema": CACHE_PAYLOAD_SCHEMA + 1, "key": KEY, "result": RESULT}
    path = cache.path_for(KEY)
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps(payload), encoding="utf-8")
    assert cache.load(KEY) is None
    assert cache.invalid == 1


def test_store_is_atomic_no_temp_residue(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store(KEY, RESULT)
    leftovers = [p for p in (tmp_path / KEY[:2]).iterdir() if p.suffix == ".tmp"]
    assert leftovers == []


# -- concurrent store/load hammering -----------------------------------------
#
# Server workers and campaign pool processes share one cache root; the
# contract is that a reader racing any number of writers on the same
# key sees either a miss or one complete payload — never torn JSON.

def _payload(writer: int, value: int) -> dict:
    # Size varies with value so an interleaving of two writes could not
    # parse as valid JSON of either; the pad length is checkable.
    return {"writer": writer, "value": value, "pad": "x" * (7 + value % 97)}


def _payload_ok(result: dict) -> bool:
    return (
        set(result) == {"writer", "value", "pad"}
        and result["pad"] == "x" * (7 + result["value"] % 97)
    )


def _hammer_worker(root: str, writer: int, iterations: int) -> tuple[int, int]:
    """Store and load the one shared key in a tight loop.

    Returns (invalid_entries_seen, torn_payloads_seen) — both must be
    zero for every process.
    """
    from repro.campaign.cache import ResultCache

    cache = ResultCache(root)
    torn = 0
    for i in range(iterations):
        cache.store(KEY, _payload(writer, i))
        result = cache.load(KEY)
        if result is not None and not _payload_ok(result):
            torn += 1
    return cache.invalid, torn


def test_concurrent_store_one_key_never_torn(tmp_path):
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    root = tmp_path / "cache"
    writers, iterations = 3, 120
    with ctx.Pool(writers) as pool:
        handles = [
            pool.apply_async(_hammer_worker, (str(root), w, iterations)) for w in range(writers)
        ]
        # The parent is one more concurrent reader while the pool runs.
        reader = ResultCache(root)
        torn_in_parent = 0
        while not all(h.ready() for h in handles):
            result = reader.load(KEY)
            if result is not None and not _payload_ok(result):
                torn_in_parent += 1
        outcomes = [h.get(timeout=60) for h in handles]
    assert torn_in_parent == 0
    assert reader.invalid == 0
    for invalid, torn in outcomes:
        assert invalid == 0
        assert torn == 0
    # The survivor is one complete payload from some writer ...
    final = ResultCache(root).load(KEY)
    assert final is not None and _payload_ok(final)
    # ... and no temp files leaked out of the interleaved stores.
    leftovers = [p for p in (root / KEY[:2]).iterdir() if p.suffix == ".tmp"]
    assert leftovers == []
