"""Shared campaign fixtures: one small matrix, executed once."""

from __future__ import annotations

import pytest

from repro.campaign.engine import CampaignRun, run_campaign
from repro.campaign.spec import CampaignSpec


@pytest.fixture(scope="session")
def small_spec() -> CampaignSpec:
    """A fast 2-runtime fib matrix on the ``small`` preset."""
    return CampaignSpec(
        benchmarks=("fib",),
        runtimes=("hpx", "std"),
        core_counts=(1, 2),
        samples=2,
        preset="small",
    )


@pytest.fixture(scope="session")
def small_run(small_spec: CampaignSpec) -> CampaignRun:
    return run_campaign(small_spec, jobs=1)
