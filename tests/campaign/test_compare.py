"""repro compare: point diffing, thresholds, exit codes."""

from __future__ import annotations

import copy

import pytest

from repro.campaign.artifact import CampaignArtifact
from repro.campaign.compare import (
    CompareThresholds,
    compare_artifacts,
    render_compare,
)


def scaled_artifact(artifact, benchmark, runtime, cores, factor):
    """A deep copy with one point's exec times scaled by *factor*."""
    data = copy.deepcopy(artifact.to_json_dict())
    touched = 0
    for cell in data["cells"]:
        if (cell["benchmark"], cell["runtime"], cell["cores"]) == (benchmark, runtime, cores):
            cell["result"]["exec_time_ns"] = round(cell["result"]["exec_time_ns"] * factor)
            touched += 1
    assert touched, "no cells matched the injection target"
    return CampaignArtifact.from_json_dict(data)


def dropped_artifact(artifact, benchmark, runtime, cores):
    data = copy.deepcopy(artifact.to_json_dict())
    data["cells"] = [
        c
        for c in data["cells"]
        if (c["benchmark"], c["runtime"], c["cores"]) != (benchmark, runtime, cores)
    ]
    return CampaignArtifact.from_json_dict(data)


def test_identical_artifacts_pass(small_run):
    report = compare_artifacts(small_run.artifact, small_run.artifact)
    assert report.ok
    assert report.exit_code() == 0
    assert all(d.status in ("ok", "abort-both") for d in report.deltas)
    assert "PASS" in render_compare(report)


def test_injected_regression_fails(small_run):
    """A synthetic >10% slowdown on one point trips the 10% gate."""
    slower = scaled_artifact(small_run.artifact, "fib", "hpx", 2, 1.25)
    report = compare_artifacts(small_run.artifact, slower, CompareThresholds(exec_time=0.10))
    assert not report.ok
    assert report.exit_code() == 1
    [failure] = report.failures
    assert (failure.benchmark, failure.runtime, failure.cores) == ("fib", "hpx", 2)
    assert failure.status == "regression"
    assert failure.exec_delta == pytest.approx(0.25, abs=0.01)
    assert "FAIL" in render_compare(report)


def test_regression_within_threshold_passes(small_run):
    slightly_slower = scaled_artifact(small_run.artifact, "fib", "hpx", 2, 1.04)
    report = compare_artifacts(
        small_run.artifact, slightly_slower, CompareThresholds(exec_time=0.10)
    )
    assert report.ok


def test_improvement_does_not_fail(small_run):
    faster = scaled_artifact(small_run.artifact, "fib", "hpx", 2, 0.5)
    report = compare_artifacts(small_run.artifact, faster, CompareThresholds(exec_time=0.10))
    assert report.ok
    statuses = {d.key: d.status for d in report.deltas}
    assert statuses[("fib", "hpx", 2)] == "improved"


def test_missing_point_fails(small_run):
    partial = dropped_artifact(small_run.artifact, "fib", "hpx", 2)
    report = compare_artifacts(small_run.artifact, partial)
    assert not report.ok
    assert any(d.status == "missing" for d in report.failures)
    # the reverse direction is a new point: informational, not a failure
    reverse = compare_artifacts(partial, small_run.artifact)
    assert reverse.ok
    assert any(d.status == "new" for d in reverse.deltas)


def test_new_abort_fails(small_run):
    data = copy.deepcopy(small_run.artifact.to_json_dict())
    touched = 0
    for cell in data["cells"]:
        if (cell["benchmark"], cell["runtime"], cell["cores"]) == ("fib", "hpx", 1):
            cell["result"]["aborted"] = True
            cell["result"]["abort_reason"] = "injected"
            touched += 1
    assert touched
    aborting = CampaignArtifact.from_json_dict(data)
    report = compare_artifacts(small_run.artifact, aborting)
    assert not report.ok
    assert any(d.status == "abort-new" for d in report.failures)
    # an abort that went away is an improvement, not a failure
    fixed = compare_artifacts(aborting, small_run.artifact)
    assert fixed.ok
    assert any(d.status == "abort-fixed" for d in fixed.deltas)


def test_counter_threshold_gates_when_configured(small_run):
    data = copy.deepcopy(small_run.artifact.to_json_dict())
    for cell in data["cells"]:
        if (cell["benchmark"], cell["runtime"], cell["cores"]) == ("fib", "hpx", 1):
            for row in cell["result"]["telemetry"]:
                row["value"] *= 2.0
    drifted = CampaignArtifact.from_json_dict(data)
    lax = compare_artifacts(small_run.artifact, drifted, CompareThresholds(exec_time=0.10))
    assert lax.ok  # counters are reported but not gated by default
    strict = compare_artifacts(
        small_run.artifact,
        drifted,
        CompareThresholds(exec_time=0.10, counters=0.5),
    )
    assert not strict.ok
    assert any(d.status == "counter-regression" for d in strict.failures)


def test_render_lists_every_point(small_run):
    report = compare_artifacts(small_run.artifact, small_run.artifact)
    text = render_compare(report)
    assert len(text.splitlines()) == len(report.deltas) + 2  # header + verdict
