"""Artifact format: roundtrip, aggregation, harness equivalence."""

from __future__ import annotations

import json

import pytest

from repro.campaign.artifact import ARTIFACT_SCHEMA, CampaignArtifact
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_strong_scaling


def test_save_load_roundtrip(small_run, tmp_path):
    path = small_run.artifact.save(tmp_path / "campaigns" / "small.json")
    loaded = CampaignArtifact.load(path)
    assert loaded.spec == small_run.artifact.spec
    assert loaded.cells == small_run.artifact.cells
    assert loaded.cells_json() == small_run.artifact.cells_json()


def test_artifact_is_versioned(small_run, tmp_path):
    path = small_run.artifact.save(tmp_path / "a.json")
    data = json.loads(path.read_text())
    assert data["schema"] == ARTIFACT_SCHEMA
    assert data["kind"] == "repro-campaign"
    assert data["code_version"]
    assert data["environment"]["python"]
    assert len(data["cells"]) == len(small_run.artifact.cells)
    assert data["points"]  # per-(benchmark, runtime, cores) aggregates


def test_unsupported_schema_rejected(small_run, tmp_path):
    data = small_run.artifact.to_json_dict()
    data["schema"] = ARTIFACT_SCHEMA + 1
    with pytest.raises(ValueError, match="unsupported artifact schema"):
        CampaignArtifact.from_json_dict(data)
    with pytest.raises(ValueError, match="not a campaign artifact"):
        CampaignArtifact.from_json_dict({"cells": []})


def test_curves_match_serial_harness(small_spec, small_run):
    """Artifact aggregation is the harness aggregation, number for number."""
    config = ExperimentConfig(
        platform=small_spec.platform,
        hpx=small_spec.hpx,
        std=small_spec.std,
        samples=small_spec.samples,
        core_counts=small_spec.core_counts,
        seed=small_spec.seed,
    )
    direct = run_strong_scaling("fib", "hpx", params={"n": 12}, config=config)
    from_artifact = small_run.artifact.curve("fib", "hpx")
    assert [p.cores for p in from_artifact.points] == [p.cores for p in direct.points]
    for mine, theirs in zip(from_artifact.points, direct.points):
        assert mine.median_exec_ns == theirs.median_exec_ns
        assert mine.exec_samples == theirs.exec_samples
        assert mine.counters == theirs.counters


def test_curve_lookup_error_lists_contents(small_run):
    with pytest.raises(KeyError, match="fib/hpx"):
        small_run.artifact.curve("strassen", "hpx")


def test_cells_persist_telemetry_rows(small_run):
    """Since schema 2, cells carry the full sample stream, not a totals dict."""
    data = small_run.artifact.to_json_dict()
    assert data["schema"] == ARTIFACT_SCHEMA
    cell = next(c for c in data["cells"] if not c["result"]["aborted"])
    assert "counters" not in cell["result"]
    rows = cell["result"]["telemetry"]
    assert rows and all(
        {"name", "instance", "timestamp_ns", "value", "unit", "run_id"} == set(row)
        for row in rows
    )


def test_run_result_round_trips_through_telemetry_rows(small_run):
    """Serialize -> deserialize preserves both frame and totals view."""
    cr = next(c for c in small_run.artifact.cells if not c.result["aborted"])
    restored = cr.run_result()
    assert restored.telemetry is not None
    assert restored.counters == restored.telemetry.totals()
    from repro.campaign.artifact import run_result_to_dict

    assert run_result_to_dict(restored) == dict(cr.result)


def test_legacy_schema1_artifact_still_loads(small_run):
    """Pre-telemetry artifacts (schema 1, counters dicts) load: counter
    dicts are adapted into one-shot frames with identical totals."""
    data = small_run.artifact.to_json_dict()
    data["schema"] = 1
    for cell in data["cells"]:
        rows = cell["result"].pop("telemetry")
        cell["result"]["counters"] = {row["name"]: row["value"] for row in rows}
    legacy = CampaignArtifact.from_json_dict(data)
    for old, new in zip(small_run.artifact.cells, legacy.cells):
        assert old.run_result().counters == new.run_result().counters
    # Aggregation over the adapted cells matches the native artifact.
    native = small_run.artifact.curve("fib", "hpx")
    adapted = legacy.curve("fib", "hpx")
    for mine, theirs in zip(native.points, adapted.points):
        assert mine.counters == theirs.counters
        assert mine.median_exec_ns == theirs.median_exec_ns
