"""Execution-mode selection: spelling, resolution, eligibility."""

import pytest

from repro.api import Session
from repro.exec.modes import (
    EXECUTION_MODES,
    CohortIneligibleError,
    ExecutionMode,
    resolve_mode,
)
from repro.workloads import WorkloadSpec


# -- resolve_mode ------------------------------------------------------------


def test_none_resolves_to_exact_default():
    assert resolve_mode(None) is ExecutionMode.EXACT


@pytest.mark.parametrize("mode", ExecutionMode)
def test_spellings_round_trip(mode):
    assert resolve_mode(mode.value) is mode
    assert resolve_mode(mode) is mode
    assert mode.value in EXECUTION_MODES


@pytest.mark.parametrize("bad", ["fast", "EXACT", "", 7])
def test_unknown_spellings_are_rejected(bad):
    with pytest.raises(ValueError, match="exact, cohort"):
        resolve_mode(bad)


# -- mode as a workload parameter -------------------------------------------


def test_mode_param_is_validated_at_merge_time():
    from repro.inncabs.suite import get_benchmark

    bench = get_benchmark("fib")
    merged = bench.params_with_defaults({"mode": "cohort"})
    assert merged["mode"] == "cohort"
    with pytest.raises(ValueError, match="execution mode"):
        bench.params_with_defaults({"mode": "warp"})


def test_mode_param_selects_the_engine():
    session = Session(runtime="hpx", cores=2)
    result = session.run(WorkloadSpec.parse("fib:n=8,mode=cohort"), collect_counters=False)
    assert result.mode == "cohort"
    assert result.verified


def test_mode_keyword_wins_over_param():
    session = Session(runtime="hpx", cores=2)
    result = session.run(
        WorkloadSpec.parse("fib:n=8,mode=cohort"),
        mode="exact",
        collect_counters=False,
    )
    assert result.mode == "exact"


def test_default_runs_are_exact():
    session = Session(runtime="hpx", cores=2)
    result = session.run(WorkloadSpec.parse("fib:n=8"), collect_counters=False)
    assert result.mode == "exact"


# -- eligibility -------------------------------------------------------------


def test_ineligible_workload_raises_before_simulation():
    session = Session(runtime="hpx", cores=2)
    with pytest.raises(CohortIneligibleError, match="no cohort plan"):
        session.run(WorkloadSpec.parse("sort:n=256,cutoff=64"), mode="cohort")


def test_taskbench_nontrivial_shapes_are_ineligible():
    session = Session(runtime="hpx", cores=2)
    with pytest.raises(CohortIneligibleError, match="taskbench"):
        session.run(
            WorkloadSpec.parse("taskbench:shape=fft,width=8,steps=4"), mode="cohort"
        )


def test_taskbench_trivial_shape_is_eligible():
    session = Session(runtime="hpx", cores=2)
    result = session.run(
        WorkloadSpec.parse("taskbench:shape=trivial,width=8,steps=4"),
        mode="cohort",
        collect_counters=False,
    )
    assert result.mode == "cohort"
    assert result.verified
    assert result.tasks_executed == 8 * 4 + 1  # nodes + driver
