"""Unified execution errors and their diagnostics."""

import pytest

import repro.kernel.scheduler as kernel_sched
import repro.runtime.scheduler as runtime_sched
from repro.exec.errors import (
    DeadlockError,
    ExecutionError,
    ResourceExhausted,
    describe_tasks,
    format_stall,
)
from repro.kernel.config import StdParams
from repro.kernel.scheduler import StdRuntime
from repro.model.future import SimFuture
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine, MachineSpec

from tests.conftest import fib_body


def test_legacy_names_are_aliases():
    assert runtime_sched.DeadlockError is DeadlockError
    assert kernel_sched.ResourceExhausted is ResourceExhausted
    assert kernel_sched.DeadlockError is DeadlockError


def test_one_hierarchy():
    assert issubclass(DeadlockError, ExecutionError)
    assert issubclass(ResourceExhausted, ExecutionError)
    assert issubclass(ExecutionError, RuntimeError)


def _stuck_body(ctx):
    yield ctx.compute(100)
    yield ctx.wait(SimFuture())  # never fulfilled


@pytest.mark.parametrize("cls", [HpxRuntime, StdRuntime])
def test_deadlock_diagnostics_name_the_stuck_task(cls):
    rt = cls(Engine(), Machine(MachineSpec()), num_workers=2)
    with pytest.raises(DeadlockError) as exc_info:
        rt.run_to_completion(_stuck_body)
    message = str(exc_info.value)
    assert "1 unfinished" in message
    assert "_stuck_body" in message


def test_resource_exhausted_names_over_budget_threads():
    params = StdParams(ram_budget_bytes=4 * StdParams().thread_commit_bytes)
    rt = StdRuntime(Engine(), Machine(MachineSpec()), num_workers=2, params=params)
    with pytest.raises(ResourceExhausted) as exc_info:
        rt.run_to_completion(fib_body, 10)
    message = str(exc_info.value)
    assert "exhausted memory" in message
    assert "thread" in message
    assert "fib_body" in message
    assert rt.aborted and rt.abort_reason == message


class _FakeTask:
    def __init__(self, tid, description, state):
        self.tid = tid
        self.description = description
        self.state = state


class _State:
    def __init__(self, value):
        self.value = value


def _tasks(n):
    return [_FakeTask(i, f"job({i})", _State("suspended")) for i in range(n)]


def test_describe_tasks_truncates():
    lines = describe_tasks(_tasks(7), noun="thread", limit=5)
    assert len(lines) == 6
    assert lines[0] == "  thread 0 job(0) state=suspended"
    assert lines[-1] == "  ... and 2 more"


def test_format_stall_headline():
    text = format_stall(_tasks(2), now_ns=1234, noun="task")
    assert text.splitlines()[0] == "deadlock: 2 unfinished tasks at t=1234ns"
    assert "job(1)" in text
