"""ProbeBus trace-hook subscription and fan-out composition."""

import pytest

from repro.exec.probes import ProbeBus, SchedulerProbe, WorkerProbe


def _bus():
    return ProbeBus(SchedulerProbe(), [WorkerProbe(), WorkerProbe()])


class _Task:
    def __init__(self, tid):
        self.tid = tid
        self.description = "body"


def test_single_subscriber_is_installed_directly():
    bus = _bus()
    seen = []
    hook = lambda t, k, task, aux: seen.append((t, k, task.tid, aux))  # noqa: E731
    bus.subscribe_trace(hook)
    assert bus.trace is hook  # no fan-out wrapper on the hot path
    bus.trace(10, "create", _Task(1), None)
    assert seen == [(10, "create", 1, None)]


def test_fan_out_delivers_to_every_subscriber_in_order():
    bus = _bus()
    order = []
    a = lambda t, k, task, aux: order.append(("a", t))  # noqa: E731
    b = lambda t, k, task, aux: order.append(("b", t))  # noqa: E731
    bus.subscribe_trace(a)
    bus.subscribe_trace(b)
    assert bus.trace is not None
    bus.trace(5, "activate", _Task(2), 0)
    assert order == [("a", 5), ("b", 5)]


def test_unsubscribe_restores_previous_shape():
    bus = _bus()
    seen_a, seen_b = [], []
    a = lambda *args: seen_a.append(args)  # noqa: E731
    b = lambda *args: seen_b.append(args)  # noqa: E731
    bus.subscribe_trace(a)
    bus.subscribe_trace(b)
    bus.unsubscribe_trace(a)
    assert bus.trace is b  # back to the direct single-hook form
    bus.unsubscribe_trace(b)
    assert bus.trace is None  # inactive path: one attribute load


def test_double_subscribe_is_an_error():
    bus = _bus()
    hook = lambda *args: None  # noqa: E731
    bus.subscribe_trace(hook)
    with pytest.raises(ValueError, match="already subscribed"):
        bus.subscribe_trace(hook)


def test_unsubscribe_of_unknown_hook_is_an_error():
    bus = _bus()
    with pytest.raises(ValueError, match="not subscribed"):
        bus.unsubscribe_trace(lambda *args: None)


def test_legacy_direct_assignment_still_works():
    bus = _bus()
    seen = []
    bus.trace = lambda t, k, task, aux: seen.append(t)
    bus.trace(1, "create", _Task(1), None)
    assert seen == [1]
