"""Cohort-vs-exact equivalence: counts bit-equal, times within bounds.

The mesoscale engine is an approximation with an exactness contract
(see ``docs/cohort.md``): structural counters (task counts) are
bit-identical to the exact engine, boundary samples are deterministic,
and time-like totals agree within documented error bounds.  These
tests pin both halves on small inputs where the exact engine is cheap.
"""

import random

import pytest

from repro.api import Session
from repro.workloads import WorkloadSpec

#: Documented worst-case relative error on time-like totals (exec time,
#: cumulative exec/overhead ns).  Measured: hpx fib -15%, std fib -5%,
#: taskbench trivial +36% (the sequential driver does not overlap with
#: node execution in the mean-value model).
TIME_RTOL = 0.40

SEED = 20160523


def _run(spec, runtime, cores, mode, **kwargs):
    session = Session(runtime=runtime, cores=cores)
    return session.run(WorkloadSpec.parse(spec), mode=mode, **kwargs)


def _close(a, b, rtol=TIME_RTOL):
    return abs(a - b) <= rtol * max(abs(a), abs(b), 1)


# -- fib: the calibrated flagship -------------------------------------------


@pytest.mark.parametrize("runtime", ["hpx", "std"])
@pytest.mark.parametrize("n", [10, 12])
def test_fib_counts_match_exactly(runtime, n):
    exact = _run(f"fib:n={n}", runtime, 4, "exact", collect_counters=False)
    cohort = _run(f"fib:n={n}", runtime, 4, "cohort", collect_counters=False)
    assert cohort.verified and exact.verified
    assert cohort.tasks_created == exact.tasks_created
    assert cohort.tasks_executed == exact.tasks_executed
    assert _close(cohort.exec_time_ns, exact.exec_time_ns)
    # Far fewer engine events is the whole point of the mesoscale path.
    assert cohort.engine_events < exact.engine_events / 10


def test_fib_hpx_peak_live_matches_exactly():
    # The hpx live-population model is calibrated against the exact
    # engine's lazy depth-first admission: workers x (depth - 2).
    exact = _run("fib:n=12", "hpx", 8, "exact", collect_counters=False)
    cohort = _run("fib:n=12", "hpx", 8, "cohort", collect_counters=False)
    assert cohort.peak_live_tasks == exact.peak_live_tasks


def test_fib_std_peak_live_within_bound():
    exact = _run("fib:n=12", "std", 4, "exact", collect_counters=False)
    cohort = _run("fib:n=12", "std", 4, "cohort", collect_counters=False)
    assert _close(cohort.peak_live_tasks, exact.peak_live_tasks, rtol=0.15)


def test_fib_offcore_traffic_matches_exactly():
    # Off-core traffic is per-task resource-model bookkeeping, not a
    # scheduling quantity: the cohort books the same per-member charge.
    exact = _run("fib:n=12", "hpx", 4, "exact")
    cohort = _run("fib:n=12", "hpx", 4, "cohort")
    assert cohort.offcore_bytes == exact.offcore_bytes
    for name in (
        "/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD",
        "/threads{locality#0/total}/count/cumulative",
    ):
        assert cohort.counters[name] == exact.counters[name], name


def test_fib_counter_totals_within_bounds():
    exact = _run("fib:n=12", "hpx", 4, "exact")
    cohort = _run("fib:n=12", "hpx", 4, "cohort")
    for name in (
        "/threads{locality#0/total}/time/average",
        "/threads{locality#0/total}/time/cumulative-overhead",
    ):
        assert _close(cohort.counters[name], exact.counters[name]), name


# -- nqueens: the unbalanced recursive tree ---------------------------------


@pytest.mark.parametrize("runtime", ["hpx", "std"])
@pytest.mark.parametrize("n,cutoff", [(8, 3), (10, 4)])
def test_nqueens_counts_match_exactly(runtime, n, cutoff):
    spec = f"nqueens:n={n},cutoff={cutoff}"
    exact = _run(spec, runtime, 4, "exact", collect_counters=False)
    cohort = _run(spec, runtime, 4, "cohort", collect_counters=False)
    assert cohort.verified and exact.verified
    assert cohort.tasks_created == exact.tasks_created
    assert cohort.tasks_executed == exact.tasks_executed
    assert _close(cohort.exec_time_ns, exact.exec_time_ns)
    assert cohort.engine_events < exact.engine_events / 10


def test_nqueens_counter_totals_within_bounds():
    exact = _run("nqueens:n=10,cutoff=4", "hpx", 4, "exact")
    cohort = _run("nqueens:n=10,cutoff=4", "hpx", 4, "cohort")
    assert (
        cohort.counters["/threads{locality#0/total}/count/cumulative"]
        == exact.counters["/threads{locality#0/total}/count/cumulative"]
    )
    for name in (
        "/threads{locality#0/total}/time/average",
        "/threads{locality#0/total}/time/cumulative-overhead",
    ):
        assert _close(cohort.counters[name], exact.counters[name]), name


def test_nqueens_without_known_solution_is_ineligible():
    from repro.exec.modes import CohortIneligibleError

    # n=13 is outside the known-solutions table, so the plan's result
    # could not be exact; the workload must refuse a cohort run.
    with pytest.raises(CohortIneligibleError):
        _run("nqueens:n=13,cutoff=3", "hpx", 4, "cohort", collect_counters=False)


# -- abort parity: the std thread explosion ---------------------------------


def test_std_stack_exhaustion_aborts_in_both_modes():
    exact = _run("fib:n=19", "std", 4, "exact", collect_counters=False)
    cohort = _run("fib:n=19", "std", 4, "cohort", collect_counters=False)
    assert exact.aborted and cohort.aborted
    assert cohort.peak_live_tasks == exact.peak_live_tasks
    assert cohort.abort_reason.startswith("thread stacks exhausted memory")
    assert (
        cohort.abort_reason.splitlines()[0] == exact.abort_reason.splitlines()[0]
    )


# -- seeded random homogeneous DAGs -----------------------------------------


def _random_trivial_configs(count):
    rng = random.Random(SEED)
    for _ in range(count):
        yield {
            "width": rng.randrange(4, 64),
            "steps": rng.randrange(2, 32),
            "grain_ns": rng.choice([500, 2000, 10000]),
            "membytes": rng.choice([0, 4096]),
            "cores": rng.choice([2, 4, 8]),
            "runtime": rng.choice(["hpx", "std"]),
        }


@pytest.mark.parametrize("config", list(_random_trivial_configs(6)), ids=str)
def test_random_homogeneous_dags_agree(config):
    spec = (
        "taskbench:shape=trivial,width={width},steps={steps},"
        "grain_ns={grain_ns},membytes={membytes}".format(**config)
    )
    exact = _run(spec, config["runtime"], config["cores"], "exact", collect_counters=False)
    cohort = _run(spec, config["runtime"], config["cores"], "cohort", collect_counters=False)
    assert exact.verified and cohort.verified
    assert cohort.tasks_created == exact.tasks_created
    assert cohort.tasks_executed == exact.tasks_executed
    assert _close(cohort.exec_time_ns, exact.exec_time_ns)


# -- boundary determinism ----------------------------------------------------


def test_boundary_samples_are_bit_exact_across_runs():
    a = _run("fib:n=12", "hpx", 4, "cohort")
    b = _run("fib:n=12", "hpx", 4, "cohort")
    assert a.counters == b.counters
    assert a.exec_time_ns == b.exec_time_ns


def test_final_totals_equal_telemetry_totals():
    result = _run("fib:n=12", "hpx", 4, "cohort")
    assert result.telemetry is not None
    assert result.telemetry.totals() == result.counters


# -- paper scale -------------------------------------------------------------


def test_paper_scale_fib_completes_instantly():
    import time

    t0 = time.monotonic()
    result = _run("fib:n=40", "hpx", 20, "cohort", collect_counters=False)
    elapsed = time.monotonic() - t0
    assert result.verified
    assert result.tasks_executed == 331_160_281  # 2*F(41) - 1
    assert elapsed < 30.0  # seconds-fast where exact would take hours
