"""The shared effect interpreter, unit-tested against a fake backend."""

from pathlib import Path

import pytest

from repro.exec.interp import EffectInterpreter
from repro.kernel.scheduler import StdRuntime
from repro.model.effects import Compute, Spawn
from repro.model.future import ThrowValue
from repro.model.work import Work
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine, MachineSpec

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


class _FakeTask:
    def __init__(self, body):
        self._body = body
        self.gen = None
        self.pending_send = "stale"
        self.future = None

    def bind(self, ctx):
        self.gen = self._body(ctx)
        return self.gen


class _FakeBackend:
    """Records every interpreter callback; gates via ``alive``."""

    def __init__(self):
        self.alive = True
        self.calls = []

    def begin_step(self, worker, task):
        return self.alive

    def __getattr__(self, name):
        if name.startswith("do_") or name in ("complete", "fail"):
            return lambda *args, _n=name: self.calls.append((_n, args))
        raise AttributeError(name)


def test_dispatch_by_effect_class():
    backend = _FakeBackend()
    interp = EffectInterpreter(backend)

    def body(ctx):
        yield Compute(work=Work(cpu_ns=10))
        yield Spawn(fn=body, args=(), policy="async")

    task = _FakeTask(body)
    interp.step("w", task, None)
    assert task.pending_send is None  # consumed before the resume
    interp.step("w", task, None)
    kinds = [name for name, _ in backend.calls]
    assert kinds == ["do_compute", "do_spawn"]


def test_return_completes_and_raise_fails():
    backend = _FakeBackend()
    interp = EffectInterpreter(backend)

    def returns(ctx):
        return 42
        yield

    def raises(ctx):
        raise ValueError("boom")
        yield

    interp.step("w", _FakeTask(returns), None)
    interp.step("w", _FakeTask(raises), None)
    (c_name, c_args), (f_name, f_args) = backend.calls
    assert (c_name, c_args[2]) == ("complete", 42)
    assert f_name == "fail" and str(f_args[2]) == "boom"


def test_throw_value_propagates_into_the_body():
    backend = _FakeBackend()
    interp = EffectInterpreter(backend)
    seen = []

    def body(ctx):
        try:
            yield Compute(work=Work(cpu_ns=1))
        except KeyError as exc:
            seen.append(exc)
        return "recovered"

    task = _FakeTask(body)
    interp.step("w", task, None)
    interp.step("w", task, ThrowValue(KeyError("lost")))
    assert len(seen) == 1
    assert backend.calls[-1][0] == "complete"
    assert backend.calls[-1][1][2] == "recovered"


def test_non_effect_yield_fails_the_task():
    backend = _FakeBackend()
    interp = EffectInterpreter(backend)

    def body(ctx):
        yield "not an effect"

    interp.step("w", _FakeTask(body), None)
    name, args = backend.calls[0]
    assert name == "fail"
    assert "non-effect" in str(args[2])


def test_begin_step_gates_everything():
    backend = _FakeBackend()
    backend.alive = False
    interp = EffectInterpreter(backend)
    task = _FakeTask(lambda ctx: iter(()))
    interp.step("w", task, None)
    assert backend.calls == []
    assert task.gen is None  # never even bound


def test_both_runtimes_share_the_interpreter():
    engine, machine = Engine(), Machine(MachineSpec())
    hpx = HpxRuntime(engine, machine, num_workers=2)
    std = StdRuntime(Engine(), Machine(MachineSpec()), num_workers=2)
    assert type(hpx._interp) is type(std._interp) is EffectInterpreter
    assert hpx._step.__func__ is std._step.__func__ is EffectInterpreter.step


def test_generator_resume_exists_only_in_the_interpreter():
    """Acceptance: the effect-interpretation loop lives in one module."""
    offenders = []
    for path in SRC.rglob("*.py"):
        if path.relative_to(SRC).as_posix() == "exec/interp.py":
            continue
        text = path.read_text()
        if "gen.send(" in text or "gen.throw(" in text:
            offenders.append(str(path))
    assert offenders == []
