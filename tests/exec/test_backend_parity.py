"""Cross-runtime parity: both backends expose the same counter surface.

The tentpole guarantee of the execution layer: `/threads/...` counters
are views over the shared probe bus, so the documented name set exists
— and evaluates — identically on the HPX and the std::async backend.
"""

import re
from pathlib import Path

import pytest

from repro.counters.base import CounterEnvironment
from repro.counters.registry import build_default_registry
from repro.exec.backend import SchedulerBackend
from repro.kernel.scheduler import StdRuntime
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine, MachineSpec

from tests.conftest import fib_body

DOCS = Path(__file__).resolve().parents[2] / "docs" / "counters.md"
WORKERS = 3


def _make(runtime_name: str) -> SchedulerBackend:
    engine = Engine()
    machine = Machine(MachineSpec())
    cls = HpxRuntime if runtime_name == "hpx" else StdRuntime
    return cls(engine, machine, num_workers=WORKERS)


def _registry(rt):
    env = CounterEnvironment(engine=rt.engine, runtime=rt, machine=rt.machine)
    return build_default_registry(env)


def test_both_runtimes_are_scheduler_backends():
    for name in ("hpx", "std"):
        rt = _make(name)
        assert isinstance(rt, SchedulerBackend)
        assert rt.name == name
        assert rt.probes.workers == [w.stats for w in rt.workers]


def test_threads_discovery_identical_across_backends():
    """Wildcard discovery expands to the same concrete names on both."""
    specs = [
        "/threads{locality#0/worker-thread#*}/count/cumulative",
        "/threads{locality#0/worker-thread#*}/time/average",
        "/threads{locality#0/worker-thread#*}/idle-rate",
    ]
    expansions = {}
    for name in ("hpx", "std"):
        reg = _registry(_make(name))
        expansions[name] = [n for spec in specs for n in reg.discover_counters(spec)]
    assert expansions["hpx"] == expansions["std"]
    assert len(expansions["hpx"]) == 3 * WORKERS


def _documented_threads_counters() -> set[str]:
    """The `/threads` table rows of docs/counters.md, by counter name."""
    text = DOCS.read_text()
    section = text.split("## Thread-manager counters")[1].split("\n## ")[0]
    rows = re.findall(r"^\| `([^`]+)` \|", section, flags=re.MULTILINE)
    assert rows, "docs/counters.md lost its /threads table"
    return {f"/threads/{row}" for row in rows}


def test_documented_threads_set_matches_registry():
    """docs/counters.md lists exactly the registered /threads types."""
    reg = _registry(_make("hpx"))
    registered = {e.info.type_name for e in reg.counter_types("/threads/*")}
    assert _documented_threads_counters() == registered


@pytest.mark.parametrize("runtime_name", ["hpx", "std"])
def test_documented_threads_counters_evaluate(runtime_name):
    """Every documented /threads counter yields a number on both backends,
    as total and (where the type has them) per-worker instances."""
    rt = _make(runtime_name)
    reg = _registry(rt)
    counters = {}
    per_worker_types = set()
    for entry in reg.counter_types("/threads/*"):
        type_name = entry.info.type_name
        counter = type_name.removeprefix("/threads/")
        instances = entry.instances(reg.env)
        if ("worker-thread", 0) in instances:
            per_worker_types.add(type_name)
        for inst_name, inst_index in instances:
            suffix = "" if inst_index is None else f"#{inst_index}"
            name = f"/threads{{locality#0/{inst_name}{suffix}}}/{counter}"
            counters[name] = reg.create_counter(name)
    # Only the global scheduler-state counters are total-only.
    total_only = _documented_threads_counters() - per_worker_types
    assert total_only == {
        "/threads/count/instantaneous/active",
        "/threads/count/instantaneous/suspended",
        "/threads/wait-time/pending",
    }
    rt.run_to_completion(fib_body, 11)
    values = {name: c.get_counter_value().value for name, c in counters.items()}
    assert all(isinstance(v, (int, float)) for v in values.values())
    total = "/threads{locality#0/total}/count/cumulative"
    per_worker = [
        v for k, v in values.items() if "worker-thread" in k and k.endswith("count/cumulative")
    ]
    assert values[total] == rt.stats.tasks_executed > 0
    assert sum(per_worker) == values[total]
