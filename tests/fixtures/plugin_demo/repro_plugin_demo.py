"""Demo third-party counter provider.

The whole plugin: an ``AppCounterSet`` published under the
``repro.counter_providers`` entry-point group (see ``pyproject.toml``
next to this file).  Once the package is installed, every registry the
library builds exposes ``/demo{locality#0/total}/ticks`` with
provenance ``demo-ticks``.
"""

from repro.counters import AppCounterSet

PROVIDER = AppCounterSet("demo", provider="demo-ticks")

TICKS = PROVIDER.counter(
    "ticks",
    help_text="demo plugin tick count",
    unit="ticks",
)
