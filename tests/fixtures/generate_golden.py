"""Regenerate the golden event-stream fixtures.

Usage::

    PYTHONPATH=src python tests/fixtures/generate_golden.py

Each fixture captures one reference run's complete event transcript
(every scheduled delay, grouped by the dispatching event) plus its
final observable results (simulated time, event count, counter values).
``tests/test_golden_streams.py`` re-runs the same workloads and asserts
bit-identical transcripts, so any semantic change to the schedulers,
the effect interpreter, or the event core is caught in tier-1.

Only regenerate after an *intentional* semantic change, and say so in
the commit message.
"""

from __future__ import annotations

from pathlib import Path

from repro.api import Session, WorkloadSpec
from repro.simcore.record import RecordingEngine, save_stream

FIXTURES = Path(__file__).resolve().parent

#: name -> (benchmark, runtime, cores, params, collect_counters)
GOLDEN_RUNS = {
    "fib_hpx": ("fib", "hpx", 4, {"n": 16}, True),
    "uts_hpx": ("uts", "hpx", 4, {"b0": 60, "m": 4, "q": 0.24, "max_depth": 12}, True),
    "health_hpx": ("health", "hpx", 4, {"levels": 5, "branching": 3, "steps": 6}, True),
    "fib_std": ("fib", "std", 4, {"n": 12}, False),
    "health_std": ("health", "std", 4, {"levels": 4, "branching": 3, "steps": 4}, False),
}


def record_run(name: str) -> tuple[RecordingEngine, dict]:
    """Run one golden workload on a recording engine; returns
    (recorder, metadata) where metadata holds the observable results."""
    benchmark, runtime, cores, params, collect = GOLDEN_RUNS[name]
    recorder = RecordingEngine()
    session = Session(runtime=runtime, cores=cores, engine_factory=lambda: recorder)
    result = session.run(WorkloadSpec.parse(benchmark), params=params, collect_counters=collect)
    meta = {
        "name": name,
        "benchmark": benchmark,
        "runtime": runtime,
        "cores": cores,
        "params": params,
        "collect_counters": collect,
        "exec_time_ns": result.exec_time_ns,
        "engine_events": result.engine_events,
        "tasks_created": result.tasks_created,
        "tasks_executed": result.tasks_executed,
        "peak_live_tasks": result.peak_live_tasks,
        "verified": result.verified,
        "counters": result.counters,
    }
    return recorder, meta


def main() -> None:
    for name in GOLDEN_RUNS:
        recorder, meta = record_run(name)
        path = FIXTURES / f"{name}.stream.json.gz"
        save_stream(path, groups=recorder.groups, delays=recorder.delays, meta=meta)
        size_kb = path.stat().st_size / 1024
        print(
            f"{name}: {meta['engine_events']} events, "
            f"exec={meta['exec_time_ns']} ns -> {path.name} ({size_kb:.0f} KiB)"
        )


if __name__ == "__main__":
    main()
