"""Golden equivalence: reference runs are bit-identical to fixtures.

Each committed fixture (``tests/fixtures/*.stream.json.gz``) holds the
complete event transcript of one reference run — every scheduled delay,
grouped by the dispatching event — plus the run's observable results.
Re-running the workload must reproduce the transcript exactly, on both
scheduler backends: any change to effect interpretation, cost
accounting, or event ordering shows up as a diff here.

Regenerate intentionally with
``PYTHONPATH=src python tests/fixtures/generate_golden.py``.
"""

from pathlib import Path

import pytest

from tests.fixtures.generate_golden import GOLDEN_RUNS, record_run

from repro.simcore.record import load_stream

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: Observable results that must match besides the transcript.
SUMMARY_FIELDS = (
    "exec_time_ns",
    "engine_events",
    "tasks_created",
    "tasks_executed",
    "peak_live_tasks",
    "verified",
)


@pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
def test_reference_run_matches_committed_stream(name):
    fixture = load_stream(FIXTURES / f"{name}.stream.json.gz")
    recorder, meta = record_run(name)

    for field in SUMMARY_FIELDS:
        assert meta[field] == fixture[field], (
            f"{name}: {field} changed: {meta[field]} != {fixture[field]}"
        )
    # Counter values must match exactly (no float drift: the simulation
    # is integer-timed and counter arithmetic is deterministic).
    assert meta["counters"] == fixture["counters"]

    # The transcript itself: bit-identical scheduling behaviour.
    assert len(recorder.groups) == len(fixture["groups"]), (
        f"{name}: scheduled-event count changed"
    )
    assert recorder.groups == fixture["groups"], f"{name}: event grouping diverged"
    assert recorder.delays == fixture["delays"], f"{name}: scheduled delays diverged"


def test_fixture_inventory_matches_golden_runs():
    """Every golden run has a fixture and vice versa."""
    on_disk = {p.name.split(".")[0] for p in FIXTURES.glob("*.stream.json.gz")}
    assert on_disk == set(GOLDEN_RUNS)


@pytest.mark.parametrize(
    "name", sorted(n for n, run in GOLDEN_RUNS.items() if run[4])
)  # counter-collecting runs only
def test_telemetry_pipeline_reproduces_golden_counters(name):
    """Counter values that flow through the telemetry pipeline are
    bit-identical to the committed pre-pipeline fixtures: the frame's
    totals, the legacy result dict, and a parsed JSONL stream all agree
    with the golden counter values exactly."""
    import io

    from repro.api import Session, TelemetryConfig, WorkloadSpec
    from repro.telemetry.sinks import JsonLinesSink, parse_jsonl_stream

    fixture = load_stream(FIXTURES / f"{name}.stream.json.gz")
    benchmark, runtime, cores, params, _ = GOLDEN_RUNS[name]
    buf = io.StringIO()
    session = Session(runtime=runtime, cores=cores)
    result = session.run(
        WorkloadSpec.parse(benchmark),
        params=params,
        telemetry=TelemetryConfig(sinks=(JsonLinesSink(buf),)),
    )
    assert result.counters == fixture["counters"]
    assert result.telemetry.totals() == fixture["counters"]
    assert parse_jsonl_stream(buf.getvalue()).totals() == fixture["counters"]
