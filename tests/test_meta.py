"""Meta checks: packaging, versioning, documentation honesty."""

from pathlib import Path


import repro

ROOT = Path(__file__).resolve().parent.parent


def test_version_consistent_with_pyproject():
    pyproject = (ROOT / "pyproject.toml").read_text()
    assert f'version = "{repro.__version__}"' in pyproject


def test_public_api_surface():
    assert callable(repro.Session)
    assert not hasattr(repro, "run_benchmark")  # the deprecated shim is gone
    assert len(repro.available_benchmarks()) == 14
    assert repro.get_benchmark("fib").info.paper_task_duration_us == 1.37


def test_counter_docs_cover_registry(registry):
    """Every registered counter type appears in docs/counters.md."""
    doc = (ROOT / "docs" / "counters.md").read_text()
    for entry in registry.counter_types():
        type_name = entry.info.type_name
        # /threads/time/average is documented as `time/average` in the
        # tables; accept either full path or the trailing name.
        tail = type_name.split("/", 2)[-1]
        assert type_name in doc or tail in doc, f"{type_name} missing from docs"


def test_design_doc_lists_every_figure_bench():
    design = (ROOT / "DESIGN.md").read_text()
    for bench_file in (ROOT / "benchmarks").glob("test_fig*.py"):
        assert bench_file.name in design, f"{bench_file.name} not in DESIGN.md index"
    assert "test_table1_external_tools.py" in design
    assert "test_table5_classification.py" in design


def test_experiments_doc_mentions_every_figure():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for fig in range(1, 15):
        assert f"Fig {fig}" in text or f"Figures {fig}" in text or f"fig{fig}" in text, (
            f"figure {fig} not recorded in EXPERIMENTS.md"
        )


def test_all_source_modules_have_docstrings():
    import ast

    missing = []
    for path in (ROOT / "src").rglob("*.py"):
        tree = ast.parse(path.read_text())
        if not ast.get_docstring(tree):
            missing.append(str(path.relative_to(ROOT)))
    assert not missing, f"modules without docstrings: {missing}"


def test_all_public_functions_documented():
    """Every public callable in the counters package (the paper's
    contribution) carries a docstring."""
    import inspect

    from repro.counters import base, manager, names, providers, query, registry

    undocumented = []
    for module in (base, manager, names, providers, query, registry):
        for name, obj in vars(module).items():
            if name.startswith("_") or not callable(obj):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue
            if not inspect.getdoc(obj):
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public callables: {undocumented}"
