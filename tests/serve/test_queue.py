"""Run request validation, campaign cache-key interchange, queue bounds."""

from __future__ import annotations

import asyncio

import pytest

from repro.campaign.spec import CampaignSpec, cell_cache_key
from repro.serve.queue import (
    DEFAULT_SEED,
    BadRequest,
    QueueFull,
    RunQueue,
    RunRecord,
    RunRequest,
)


def record(run_id: str = "r-1") -> RunRecord:
    request = RunRequest(benchmark="fib")
    return RunRecord(id=run_id, tenant="t", request=request, key="k" * 64)


# -- validation --------------------------------------------------------------


def test_minimal_request_defaults():
    request = RunRequest.from_json({"benchmark": "fib"})
    assert request.runtime == "hpx"
    assert request.cores == 1
    assert request.preset == "default"
    assert request.seed == DEFAULT_SEED
    assert request.collect_counters is True


@pytest.mark.parametrize(
    "body,fragment",
    [
        ("not a dict", "JSON object"),
        ({}, "unknown workload"),
        ({"benchmark": "nope"}, "unknown workload"),
        ({"benchmark": "fib", "workload": "fib"}, "not both"),
        ({"workload": "fib:bogus"}, "bad workload"),
        ({"workload": {"name": "fib", "extra": 1}}, "bad workload"),
        ({"workload": 7}, "bad workload"),
        ({"workload": "fib", "params": {"zzz": 1}}, "unknown parameters"),
        ({"benchmark": "fib", "runtime": "tbb"}, "unknown runtime"),
        ({"benchmark": "fib", "cores": 0}, "cores"),
        ({"benchmark": "fib", "cores": True}, "cores"),
        ({"benchmark": "fib", "preset": "huge"}, "unknown preset"),
        ({"benchmark": "fib", "params": [1]}, "params"),
        ({"benchmark": "fib", "seed": "x"}, "seed"),
        ({"benchmark": "fib", "platform": "pdp11"}, "unknown platform"),
        ({"benchmark": "fib", "platform": "/etc/passwd"}, "unknown platform"),
        ({"benchmark": "fib", "collect_counters": 1}, "collect_counters"),
        ({"benchmark": "fib", "frobnicate": 1}, "unknown fields"),
    ],
)
def test_invalid_bodies_name_the_problem(body, fragment):
    with pytest.raises(BadRequest, match=fragment):
        RunRequest.from_json(body)


# -- the cache-key interchange guarantee -------------------------------------


def test_cache_key_is_the_campaign_cell_key():
    """A server run and the equivalent campaign cell share one key,
    which is what makes the shared ResultCache interchange."""
    request = RunRequest.from_json(
        {"benchmark": "fib", "runtime": "std", "cores": 4, "params": {"n": 12}, "seed": 7}
    )
    spec = CampaignSpec(
        benchmarks=("fib",),
        runtimes=("std",),
        core_counts=(4,),
        samples=1,
        seed=7,
        params={"n": 12},
    )
    cell = next(spec.cells())
    assert request.cache_key() == cell_cache_key(spec, cell)


def test_workload_field_equivalent_to_benchmark_field():
    legacy = RunRequest.from_json({"benchmark": "fib", "params": {"n": 12}})
    spelled = RunRequest.from_json({"workload": "fib:n=12"})
    objected = RunRequest.from_json({"workload": {"name": "fib", "params": {"n": 12}}})
    assert legacy == spelled == objected
    assert legacy.cache_key() == spelled.cache_key() == objected.cache_key()


def test_request_params_overlay_workload_params():
    request = RunRequest.from_json({"workload": "fib:n=12", "params": {"n": 9}})
    assert request.params == {"n": 9}


def test_every_spelling_of_one_workload_shares_one_cache_key():
    """The acceptance guarantee: a campaign matrix entry, the legacy
    serve body, and the workload-spec serve body all hash to one cell."""
    spec = CampaignSpec(
        benchmarks=("taskbench:shape=fft,steps=4,width=8",),
        runtimes=("hpx",),
        core_counts=(2,),
        samples=1,
    )
    cell_key = cell_cache_key(spec, next(spec.cells()))
    params = {"shape": "fft", "width": 8, "steps": 4}
    bodies = [
        {"benchmark": "taskbench", "cores": 2, "params": params},
        {"workload": "taskbench:shape=fft,width=8,steps=4", "cores": 2},
        {"workload": {"name": "taskbench", "params": params}, "cores": 2},
    ]
    for body in bodies:
        assert RunRequest.from_json(body).cache_key() == cell_key


def test_cache_key_varies_with_inputs():
    base = RunRequest.from_json({"benchmark": "fib"})
    assert base.cache_key() == RunRequest.from_json({"benchmark": "fib"}).cache_key()
    for variant in (
        {"benchmark": "fib", "cores": 2},
        {"benchmark": "fib", "runtime": "std"},
        {"benchmark": "fib", "params": {"n": 9}},
        {"benchmark": "fib", "seed": 1},
        {"benchmark": "fib", "platform": "desktop-1x8"},
        {"benchmark": "sort"},
    ):
        assert RunRequest.from_json(variant).cache_key() != base.cache_key()


def test_campaign_run_is_a_server_cache_hit(tmp_path):
    """A cell executed by ``repro campaign`` satisfies the equivalent
    ``POST /runs`` body straight from the shared result cache."""
    from repro.campaign.cache import ResultCache
    from repro.campaign.engine import run_campaign

    spec = CampaignSpec(
        benchmarks=("taskbench:grain_ns=500,shape=trivial,steps=2,width=4",),
        runtimes=("hpx",),
        core_counts=(2,),
        samples=1,
    )
    cache = ResultCache(tmp_path / "cache")
    run_campaign(spec, cache=cache)
    request = RunRequest.from_json(
        {
            "workload": "taskbench:shape=trivial,width=4,steps=2,grain_ns=500",
            "cores": 2,
        }
    )
    assert cache.load(request.cache_key()) is not None


# -- the bounded queue -------------------------------------------------------


def test_queue_rejects_beyond_capacity():
    async def go():
        queue = RunQueue(capacity=2)
        queue.submit(record("r-1"))
        queue.submit(record("r-2"))
        assert queue.depth == 2
        with pytest.raises(QueueFull):
            queue.submit(record("r-3"))
        first = await queue.get()
        assert first.id == "r-1"  # FIFO
        queue.submit(record("r-3"))  # drained one slot -> admissible again

    asyncio.run(go())


def test_queue_capacity_validation():
    with pytest.raises(ValueError):
        RunQueue(capacity=0)
