"""Run request validation, campaign cache-key interchange, queue bounds."""

from __future__ import annotations

import asyncio

import pytest

from repro.campaign.spec import CampaignSpec, cell_cache_key
from repro.serve.queue import (
    DEFAULT_SEED,
    BadRequest,
    QueueFull,
    RunQueue,
    RunRecord,
    RunRequest,
)


def record(run_id: str = "r-1") -> RunRecord:
    request = RunRequest(benchmark="fib")
    return RunRecord(id=run_id, tenant="t", request=request, key="k" * 64)


# -- validation --------------------------------------------------------------


def test_minimal_request_defaults():
    request = RunRequest.from_json({"benchmark": "fib"})
    assert request.runtime == "hpx"
    assert request.cores == 1
    assert request.preset == "default"
    assert request.seed == DEFAULT_SEED
    assert request.collect_counters is True


@pytest.mark.parametrize(
    "body,fragment",
    [
        ("not a dict", "JSON object"),
        ({}, "unknown benchmark"),
        ({"benchmark": "nope"}, "unknown benchmark"),
        ({"benchmark": "fib", "runtime": "tbb"}, "unknown runtime"),
        ({"benchmark": "fib", "cores": 0}, "cores"),
        ({"benchmark": "fib", "cores": True}, "cores"),
        ({"benchmark": "fib", "preset": "huge"}, "unknown preset"),
        ({"benchmark": "fib", "params": [1]}, "params"),
        ({"benchmark": "fib", "seed": "x"}, "seed"),
        ({"benchmark": "fib", "platform": "pdp11"}, "unknown platform"),
        ({"benchmark": "fib", "platform": "/etc/passwd"}, "unknown platform"),
        ({"benchmark": "fib", "collect_counters": 1}, "collect_counters"),
        ({"benchmark": "fib", "frobnicate": 1}, "unknown fields"),
    ],
)
def test_invalid_bodies_name_the_problem(body, fragment):
    with pytest.raises(BadRequest, match=fragment):
        RunRequest.from_json(body)


# -- the cache-key interchange guarantee -------------------------------------


def test_cache_key_is_the_campaign_cell_key():
    """A server run and the equivalent campaign cell share one key,
    which is what makes the shared ResultCache interchange."""
    request = RunRequest.from_json(
        {"benchmark": "fib", "runtime": "std", "cores": 4, "params": {"n": 12}, "seed": 7}
    )
    spec = CampaignSpec(
        benchmarks=("fib",),
        runtimes=("std",),
        core_counts=(4,),
        samples=1,
        seed=7,
        params={"n": 12},
    )
    cell = next(spec.cells())
    assert request.cache_key() == cell_cache_key(spec, cell)


def test_cache_key_varies_with_inputs():
    base = RunRequest.from_json({"benchmark": "fib"})
    assert base.cache_key() == RunRequest.from_json({"benchmark": "fib"}).cache_key()
    for variant in (
        {"benchmark": "fib", "cores": 2},
        {"benchmark": "fib", "runtime": "std"},
        {"benchmark": "fib", "params": {"n": 9}},
        {"benchmark": "fib", "seed": 1},
        {"benchmark": "fib", "platform": "desktop-1x8"},
        {"benchmark": "sort"},
    ):
        assert RunRequest.from_json(variant).cache_key() != base.cache_key()


# -- the bounded queue -------------------------------------------------------


def test_queue_rejects_beyond_capacity():
    async def go():
        queue = RunQueue(capacity=2)
        queue.submit(record("r-1"))
        queue.submit(record("r-2"))
        assert queue.depth == 2
        with pytest.raises(QueueFull):
            queue.submit(record("r-3"))
        first = await queue.get()
        assert first.id == "r-1"  # FIFO
        queue.submit(record("r-3"))  # drained one slot -> admissible again

    asyncio.run(go())


def test_queue_capacity_validation():
    with pytest.raises(ValueError):
        RunQueue(capacity=0)
