"""End-to-end RunServer tests over real sockets (in-process loop).

Runs use an inline runner (the campaign cell path executed directly in
the event loop) on tiny inputs, so the suite exercises the full HTTP
surface — admission control, quotas, cache short-circuit, telemetry
streaming, stats — without paying process-pool startup per test.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.engine import execute_cell
from repro.serve.client import ServeClient, ServeError, http_request
from repro.serve.queue import RunRequest
from repro.serve.quotas import QuotaConfig, TenantQuotas
from repro.serve.server import RunServer, ServerConfig
from repro.telemetry.sinks import parse_jsonl_stream

FIB = {"benchmark": "fib", "params": {"n": 8}, "cores": 2}


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


async def inline_runner(request: RunRequest) -> dict[str, Any]:
    """The campaign cell path, run inline (tiny inputs only)."""
    spec, cell = request.to_cell()
    return execute_cell(spec, cell)


class GatedRunner:
    """A runner that holds every run until the test opens the gate."""

    def __init__(self) -> None:
        self.gate = asyncio.Event()
        self.calls = 0

    async def __call__(self, request: RunRequest) -> dict[str, Any]:
        self.calls += 1
        await self.gate.wait()
        return {"aborted": False, "verified": True, "exec_time_ns": 1, "telemetry": []}


def serve_test(
    test: Callable[[RunServer, ServeClient], Awaitable[None]],
    *,
    config: ServerConfig | None = None,
    **server_kwargs: Any,
) -> None:
    """Start a server on an ephemeral port, run *test*, tear down."""

    async def main() -> None:
        server = RunServer(config or ServerConfig(port=0, workers=1), **server_kwargs)
        await server.start()
        try:
            await test(server, ServeClient("127.0.0.1", server.port))
        finally:
            await server.stop()

    asyncio.run(main())


# -- the happy path ----------------------------------------------------------


def test_submit_status_result_healthz(tmp_path):
    async def scenario(server: RunServer, client: ServeClient) -> None:
        assert (await client.healthz())["status"] == "ok"
        accepted = await client.submit(**FIB)
        assert accepted["state"] in ("queued", "done")
        status = await client.result(accepted["id"])
        assert status["state"] == "done"
        assert status["cached"] is False
        assert status["request"]["benchmark"] == "fib"
        result = status["result"]
        assert result["verified"] is True
        assert result["exec_time_ns"] > 0
        assert result["telemetry"], "counters should have been collected"

    serve_test(
        scenario,
        config=ServerConfig(port=0, workers=1, cache_dir=tmp_path),
        runner=inline_runner,
    )


def test_cache_hit_short_circuits_with_identical_payload(tmp_path):
    """A warm submit returns the cold run's payload bit-for-bit."""

    async def scenario(server: RunServer, client: ServeClient) -> None:
        cold = await client.submit(**FIB)
        cold_status = await client.result(cold["id"])
        warm = await client.submit(**FIB)
        assert warm["cached"] is True
        assert warm["state"] == "done"
        warm_status = await client.status(warm["id"])
        assert warm_status["cached"] is True
        assert warm_status["result"] == cold_status["result"]
        assert warm_status["key"] == cold_status["key"]
        # Warm telemetry stream replays the same samples.
        assert await client.telemetry(warm["id"]) == await client.telemetry(cold["id"])
        counters = (await client.stats())["counters"]
        assert counters["/serve{locality#0/cache}/hits"] == 1.0
        assert counters["/serve{locality#0/cache}/hit-rate"] == 0.5

    serve_test(
        scenario,
        config=ServerConfig(port=0, workers=1, cache_dir=tmp_path),
        runner=inline_runner,
    )


def test_server_cache_interchanges_with_campaign_cache(tmp_path):
    """A cell stored by the campaign path is a server cache hit."""
    request = RunRequest.from_json(dict(FIB))
    spec, cell = request.to_cell()
    cache = ResultCache(tmp_path)
    cache.store(request.cache_key(), execute_cell(spec, cell))

    async def scenario(server: RunServer, client: ServeClient) -> None:
        warm = await client.submit(**FIB)
        assert warm["cached"] is True

    serve_test(
        scenario,
        config=ServerConfig(port=0, workers=1, cache_dir=tmp_path),
        runner=inline_runner,
    )


# -- admission control -------------------------------------------------------


def test_queue_full_429_then_drain_resumes():
    runner = GatedRunner()

    async def scenario(server: RunServer, client: ServeClient) -> None:
        first = await client.submit(**FIB)  # picked up by the lone worker
        # Give the worker task a chance to dequeue the first run.
        for _ in range(100):
            if runner.calls:
                break
            await asyncio.sleep(0.01)
        second = await client.submit(**FIB)  # sits in the queue (capacity 1)
        reply = await client.submit_raw(dict(FIB))  # refused
        assert reply.status == 429
        assert reply.retry_after is not None and reply.retry_after >= 1
        assert "queue full" in reply.json()["error"]
        counters = (await client.stats())["counters"]
        assert counters["/serve{locality#0/runs}/rejected-queue-full"] == 1.0

        runner.gate.set()  # drain
        assert (await client.result(first["id"]))["state"] == "done"
        assert (await client.result(second["id"]))["state"] == "done"
        third = await client.submit(**FIB)  # admissible again
        assert (await client.result(third["id"]))["state"] == "done"

    serve_test(
        scenario,
        config=ServerConfig(port=0, workers=1, max_queue=1, no_cache=True),
        runner=runner,
    )


def test_quota_exhaustion_and_refill():
    clock = FakeClock()
    quotas = TenantQuotas(QuotaConfig(rate=1.0, burst=2.0), clock=clock)

    async def scenario(server: RunServer, client: ServeClient) -> None:
        acme = ServeClient("127.0.0.1", server.port, tenant="acme")
        for _ in range(2):
            await acme.submit(**FIB)
        reply = await acme.submit_raw(dict(FIB))
        assert reply.status == 429
        assert "over quota" in reply.json()["error"]
        assert reply.retry_after is not None and reply.retry_after >= 1

        other = ServeClient("127.0.0.1", server.port, tenant="zen")
        await other.submit(**FIB)  # separate tenant, separate bucket

        clock.advance(1.0)  # one token refilled
        await acme.submit(**FIB)

        stats = (await client.stats())["counters"]
        assert stats["/serve{locality#0/tenant#acme}/submitted"] == 3.0
        assert stats["/serve{locality#0/tenant#acme}/rejected"] == 1.0
        assert stats["/serve{locality#0/tenant#zen}/submitted"] == 1.0
        assert stats["/serve{locality#0/runs}/rejected-quota"] == 1.0

    serve_test(
        scenario,
        config=ServerConfig(port=0, workers=2, no_cache=True),
        runner=inline_runner,
        quotas=quotas,
    )


# -- telemetry streaming -----------------------------------------------------


def test_telemetry_stream_is_the_runs_sample_stream(tmp_path):
    async def scenario(server: RunServer, client: ServeClient) -> None:
        accepted = await client.submit(**FIB)
        status = await client.result(accepted["id"])
        text = await client.telemetry(accepted["id"])
        frame = parse_jsonl_stream(text)
        assert frame.to_rows() == status["result"]["telemetry"]
        assert len(frame.names()) > 0

    serve_test(
        scenario,
        config=ServerConfig(port=0, workers=1, cache_dir=tmp_path),
        runner=inline_runner,
    )


def test_failed_run_reports_error_and_refuses_telemetry():
    async def broken_runner(request: RunRequest) -> dict[str, Any]:
        raise RuntimeError("the simulation caught fire")

    async def scenario(server: RunServer, client: ServeClient) -> None:
        accepted = await client.submit(**FIB)
        status = await client.result(accepted["id"])
        assert status["state"] == "failed"
        assert "caught fire" in status["error"]
        with pytest.raises(ServeError, match="caught fire"):
            await client.telemetry(accepted["id"])
        counters = (await client.stats())["counters"]
        assert counters["/serve{locality#0/runs}/failed"] == 1.0

    serve_test(
        scenario,
        config=ServerConfig(port=0, workers=1, no_cache=True),
        runner=broken_runner,
    )


# -- protocol edges ----------------------------------------------------------


def test_http_error_surface():
    async def scenario(server: RunServer, client: ServeClient) -> None:
        host, port = "127.0.0.1", server.port
        assert (await http_request(host, port, "GET", "/runs/r-404")).status == 404
        assert (await http_request(host, port, "GET", "/nowhere")).status == 404
        assert (await http_request(host, port, "DELETE", "/runs/r-1")).status == 405
        assert (await http_request(host, port, "POST", "/runs", body=b"{]")).status == 400
        bad = await http_request(host, port, "POST", "/runs", body=b'{"benchmark":"nope"}')
        assert bad.status == 400
        assert "unknown workload" in bad.json()["error"]
        assert "taskbench" in bad.json()["error"]
        queued = await client.submit(**FIB)
        bad_wait = await http_request(host, port, "GET", f"/runs/{queued['id']}?wait=soon")
        assert bad_wait.status == 400

    serve_test(
        scenario,
        config=ServerConfig(port=0, workers=1, no_cache=True),
        runner=inline_runner,
    )


def test_wait_long_poll_returns_finished_state():
    runner = GatedRunner()

    async def scenario(server: RunServer, client: ServeClient) -> None:
        accepted = await client.submit(**FIB)

        async def release_soon() -> None:
            await asyncio.sleep(0.05)
            runner.gate.set()

        release = asyncio.ensure_future(release_soon())
        status = await client.status(accepted["id"], wait=10.0)
        await release
        assert status["state"] == "done"

    serve_test(
        scenario,
        config=ServerConfig(port=0, workers=1, no_cache=True),
        runner=runner,
    )
