"""HTTP wire layer: request parsing, responses, chunked transfer."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.protocol import (
    HttpError,
    chunk,
    chunked_head,
    decode_chunked,
    error_response,
    json_response,
    last_chunk,
    read_request,
    response,
)


def parse(raw: bytes):
    """Run read_request over an in-memory stream."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


def test_parse_get_with_query_and_headers():
    raw = (
        b"GET /runs/r-1?wait=2.5&result=0 HTTP/1.1\r\n"
        b"Host: localhost\r\n"
        b"X-Repro-Tenant: acme\r\n\r\n"
    )
    request = parse(raw)
    assert request.method == "GET"
    assert request.path == "/runs/r-1"
    assert request.query == {"wait": "2.5", "result": "0"}
    assert request.headers["x-repro-tenant"] == "acme"  # keys lower-cased
    assert request.body == b""


def test_parse_post_with_body():
    body = json.dumps({"benchmark": "fib"}).encode()
    raw = (
        b"POST /runs HTTP/1.1\r\nContent-Type: application/json\r\n"
        + f"Content-Length: {len(body)}\r\n\r\n".encode()
        + body
    )
    request = parse(raw)
    assert request.method == "POST"
    assert request.json() == {"benchmark": "fib"}


def test_eof_before_any_bytes_is_none():
    assert parse(b"") is None


@pytest.mark.parametrize(
    "raw",
    [
        b"NONSENSE\r\n\r\n",  # not a request line
        b"GET /x SPDY/9\r\n\r\n",  # wrong protocol
        b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n",
        b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
    ],
)
def test_malformed_heads_raise_400(raw):
    with pytest.raises(HttpError) as err:
        parse(raw)
    assert err.value.status == 400


def test_json_body_errors_are_client_errors():
    raw = b"POST /runs HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!"
    request = parse(raw)
    with pytest.raises(HttpError) as err:
        request.json()
    assert err.value.status == 400


def test_response_shapes():
    raw = response(200, b"hi", content_type="text/plain")
    assert raw.startswith(b"HTTP/1.1 200 OK\r\n")
    assert b"Content-Length: 2\r\n" in raw
    assert raw.endswith(b"\r\n\r\nhi")

    raw = json_response(202, {"id": "r-1"})
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"202 Accepted" in head
    assert json.loads(body) == {"id": "r-1"}

    raw = error_response(HttpError(429, "slow down", headers={"Retry-After": "3"}))
    assert b"429 Too Many Requests" in raw
    assert b"Retry-After: 3\r\n" in raw


def test_chunked_roundtrip():
    head = chunked_head(200)
    assert b"Transfer-Encoding: chunked" in head
    stream = chunk(b'{"a":1}\n') + chunk(b'{"b":2}\n') + last_chunk()
    assert decode_chunked(stream) == b'{"a":1}\n{"b":2}\n'


def test_decode_chunked_rejects_truncation():
    stream = chunk(b"payload")[:-3]
    with pytest.raises(ValueError):
        decode_chunked(stream)
