"""Per-tenant token buckets: exhaustion, refill, isolation."""

from __future__ import annotations

import pytest

from repro.serve.quotas import QuotaConfig, TenantQuotas, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_bucket_burst_then_refusal_with_retry_hint():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
    retry_after = bucket.try_acquire()
    assert retry_after == pytest.approx(0.5)  # 1 token at 2 tokens/s


def test_bucket_refills_with_time_and_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    for _ in range(3):
        bucket.try_acquire()
    clock.advance(1.0)  # +2 tokens
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() > 0.0
    clock.advance(100.0)  # refill far beyond capacity
    assert bucket.tokens == pytest.approx(3.0)


def test_quota_config_validation():
    with pytest.raises(ValueError):
        QuotaConfig(rate=0.0)
    with pytest.raises(ValueError):
        QuotaConfig(burst=0.5)


def test_tenants_are_isolated():
    clock = FakeClock()
    quotas = TenantQuotas(QuotaConfig(rate=1.0, burst=1.0), clock=clock)
    assert quotas.admit("a") == 0.0
    assert quotas.admit("a") > 0.0  # a exhausted its burst
    assert quotas.admit("b") == 0.0  # b has its own bucket


def test_admission_counts_per_tenant():
    clock = FakeClock()
    quotas = TenantQuotas(QuotaConfig(rate=1.0, burst=2.0), clock=clock)
    outcomes = [quotas.admit("acme") for _ in range(4)]
    assert outcomes[:2] == [0.0, 0.0] and all(r > 0 for r in outcomes[2:])
    assert quotas.stats["acme"].submitted == 2
    assert quotas.stats["acme"].rejected == 2
    clock.advance(2.0)  # two tokens back
    assert quotas.admit("acme") == 0.0
    assert quotas.stats["acme"].submitted == 3
    assert quotas.tenants() == ["acme"]
