"""One real `repro serve` subprocess, driven over the wire.

Everything else in this suite runs the server in-process; this test
covers what only a subprocess can: the CLI argument plumbing, the
port-0 announcement banner, the ProcessPoolExecutor run path, and
clean termination.
"""

from __future__ import annotations

import asyncio

from repro.serve.client import ServeClient
from repro.serve.testing import spawn_server
from repro.telemetry.sinks import parse_jsonl_stream


def test_spawned_server_end_to_end(tmp_path):
    with spawn_server(workers=2, max_queue=32, cache_dir=tmp_path / "cache") as srv:

        async def scenario() -> None:
            client = ServeClient(srv.host, srv.port, tenant="ci")
            accepted = await client.submit("fib", params={"n": 10}, cores=2)
            status = await client.result(accepted["id"], timeout=120.0)
            assert status["state"] == "done"
            assert status["result"]["verified"] is True
            frame = parse_jsonl_stream(await client.telemetry(accepted["id"]))
            assert frame.totals(), "expected counter totals through the server path"
            warm = await client.submit("fib", params={"n": 10}, cores=2)
            assert warm["cached"] is True

        asyncio.run(scenario())
