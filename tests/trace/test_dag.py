"""Task-DAG extraction and work/span analysis."""

import pytest

from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine
from repro.trace import TraceRecorder
from repro.trace.dag import build_task_dag, work_span

from tests.conftest import fib_body


def traced(body, *args, cores=4):
    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=cores)
    recorder = TraceRecorder(rt)
    with recorder:
        value = rt.run_to_completion(body, *args)
    return recorder, rt, engine, value


def test_dag_structure_of_fib():
    recorder, rt, _, _ = traced(fib_body, 10)
    graph = build_task_dag(recorder)
    # Two phase nodes per task.
    assert graph.number_of_nodes() == 2 * rt.stats.tasks_created
    spawn_edges = [(u, v) for u, v, d in graph.edges(data=True) if d["kind"] == "spawn"]
    join_edges = [(u, v) for u, v, d in graph.edges(data=True) if d["kind"] == "join"]
    # Every task except the root was spawned by its parent.
    assert len(spawn_edges) == rt.stats.tasks_created - 1
    # Every internal fib node joins two children.
    assert len(join_edges) >= 2 * ((rt.stats.tasks_created - 1) // 2)


def test_serial_chain_has_parallelism_one():
    def chain(ctx, k):
        yield ctx.compute(10_000)
        if k == 0:
            return 0
        fut = yield ctx.async_(chain, k - 1)
        value = yield ctx.wait(fut)
        return value + 1

    recorder, _, _, value = traced(chain, 20)
    assert value == 20
    ws = work_span(recorder)
    assert ws.tasks == 21
    assert ws.average_parallelism == pytest.approx(1.0, rel=0.15)


def test_fib_tree_parallelism_exceeds_one():
    recorder, _, engine, _ = traced(fib_body, 12)
    ws = work_span(recorder)
    assert ws.average_parallelism > 5
    # Span is a lower bound on any execution (Brent).
    assert engine.now >= ws.span_ns * 0.9


def test_parallelism_bounds_measured_speedup():
    """Measured speedup never exceeds the DAG's average parallelism."""
    recorder, _, e4, _ = traced(fib_body, 12, cores=4)
    ws = work_span(recorder)
    _, _, e1, _ = traced(fib_body, 12, cores=1)
    speedup = e1.now / e4.now
    assert speedup <= ws.average_parallelism * 1.1


def test_wide_fan_out_parallelism():
    def fan(ctx):
        futs = []
        for _ in range(16):
            futs.append((yield ctx.async_(leaf)))
        yield ctx.wait_all(futs)
        return None

    def leaf(ctx):
        yield ctx.compute(10_000)
        return None

    recorder, _, _, _ = traced(fan)
    ws = work_span(recorder)
    assert ws.tasks == 17
    assert 6 < ws.average_parallelism <= 17


def test_work_matches_profile_totals():
    from repro.trace.profile import build_profile

    recorder, _, _, _ = traced(fib_body, 10)
    ws = work_span(recorder)
    profile_total = sum(p.busy_ns for p in build_profile(recorder).values())
    assert ws.work_ns == profile_total
