"""Post-mortem trace recorder, profiler and exporter."""

import json

import pytest

from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine
from repro.trace import TraceRecorder, build_profile, to_chrome_trace
from repro.trace.profile import render_profile
from repro.trace.recorder import TRACE_EVENT_NS

from tests.conftest import fib_body


@pytest.fixture
def traced_run():
    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=2)
    recorder = TraceRecorder(rt)
    with recorder:
        value = rt.run_to_completion(fib_body, 10)
    return recorder, rt, value, engine


def test_records_all_tasks(traced_run):
    recorder, rt, value, _ = traced_run
    assert value == 55
    assert recorder.task_count() == rt.stats.tasks_executed
    assert len(recorder.events_of_kind("create")) == rt.stats.tasks_created
    assert len(recorder.events_of_kind("terminate")) == rt.stats.tasks_executed


def test_activations_match_phases(traced_run):
    recorder, rt, _, _ = traced_run
    assert len(recorder.events_of_kind("activate")) == rt.stats.phases


def test_events_time_ordered(traced_run):
    recorder, _, _, _ = traced_run
    times = [e.time_ns for e in recorder.events]
    assert times == sorted(times)


def test_events_of_kind_validates(traced_run):
    recorder, _, _, _ = traced_run
    with pytest.raises(ValueError, match="unknown event kind"):
        recorder.events_of_kind("explode")


def test_tracing_perturbs_like_a_tool():
    """Recording costs simulated time (the post-mortem tax)."""
    e1 = Engine()
    rt1 = HpxRuntime(e1, Machine(), num_workers=1)
    rt1.run_to_completion(fib_body, 10)
    e2 = Engine()
    rt2 = HpxRuntime(e2, Machine(), num_workers=1)
    with TraceRecorder(rt2):
        rt2.run_to_completion(fib_body, 10)
    assert e2.now > e1.now


def test_detach_stops_recording():
    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=1)
    recorder = TraceRecorder(rt)
    recorder.attach()
    recorder.detach()
    rt.run_to_completion(fib_body, 8)
    assert recorder.events == []
    assert rt.instrument_ns == 0


def test_profile_matches_counters(traced_run):
    """The post-mortem profile reconstructs what the in-situ counters
    already reported during the run (the paper's equivalence claim)."""
    recorder, rt, _, _ = traced_run
    profiles = build_profile(recorder)
    assert set(profiles) == {"fib_body"}
    profile = profiles["fib_body"]
    assert profile.tasks == rt.stats.tasks_executed
    assert profile.activations == rt.stats.phases
    # Busy time from the trace ~= cumulative task time + per-activation
    # costs the counters book as overhead; same order, within 2x.
    assert 0.5 < profile.busy_ns / rt.stats.exec_ns < 2.0
    assert profile.mean_task_ns > 0


def test_render_profile(traced_run):
    recorder, _, _, _ = traced_run
    text = render_profile(build_profile(recorder))
    assert "fib_body" in text
    assert "busy ms" in text


def test_chrome_trace_export(traced_run):
    recorder, rt, _, engine = traced_run
    doc = json.loads(to_chrome_trace(recorder))
    events = doc["traceEvents"]
    assert len(events) == rt.stats.phases
    for event in events[:50]:
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["tid"] in (0, 1)
        assert 0 <= event["ts"] * 1e3 <= engine.now


def test_trace_event_cost_constant():
    assert TRACE_EVENT_NS > 0
