"""Tracing and DAG analysis on the std::async backend.

Before the shared execution layer, the trace hook was an HPX-only
feature; the probe bus gives the kernel model the same event stream,
so post-mortem tools work on either runtime.
"""

from repro.kernel.scheduler import StdRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine, MachineSpec
from repro.trace.dag import build_task_dag, work_span
from repro.trace.recorder import TraceRecorder

from tests.conftest import fib_body


def _run_traced(n=9):
    rt = StdRuntime(Engine(), Machine(MachineSpec()), num_workers=2)
    recorder = TraceRecorder(rt)
    with recorder:
        rt.run_to_completion(fib_body, n)
    return rt, recorder


def test_std_trace_covers_the_lifecycle():
    rt, recorder = _run_traced()
    kinds = {e.kind for e in recorder.events}
    assert {"create", "activate", "suspend", "resume", "terminate", "depend"} <= kinds
    terminated = [e for e in recorder.events if e.kind == "terminate"]
    assert len(terminated) == rt.stats.tasks_executed
    created = [e for e in recorder.events if e.kind == "create"]
    assert len(created) == rt.stats.tasks_created


def test_std_create_events_carry_parent_edges():
    _, recorder = _run_traced()
    children = [e for e in recorder.events if e.kind == "create" and e.related is not None]
    assert children  # every spawned thread knows its parent
    tids = {e.tid for e in recorder.events if e.kind == "create"}
    assert all(e.related in tids for e in children)


def test_std_task_dag_and_work_span():
    rt, recorder = _run_traced()
    dag = build_task_dag(recorder)
    # Phase splitting: two nodes (spawn + join phase) per task.
    assert dag.number_of_nodes() == 2 * rt.stats.tasks_created
    assert dag.number_of_edges() > 0
    ws = work_span(recorder)
    assert 0 < ws.span_ns <= ws.work_ns
    assert ws.average_parallelism >= 1.0


def test_std_tracing_charges_instrumentation():
    """Attaching the recorder perturbs the run (per-dispatch cost)."""
    rt_plain = StdRuntime(Engine(), Machine(MachineSpec()), num_workers=2)
    rt_plain.run_to_completion(fib_body, 9)
    rt_traced, _ = _run_traced(9)
    assert rt_traced.engine.now > rt_plain.engine.now
    assert rt_traced.instrument_ns == 0  # detached again after the run
