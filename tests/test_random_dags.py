"""Randomized task-DAG equivalence between the two runtimes.

hypothesis generates random fork/join tree programs (shape, costs,
policies, mutex use); both runtimes must compute identical results,
finish with clean state, and be deterministic run-to-run.  This is the
broadest invariant check in the suite: if the schedulers lost, duplicated
or misordered any task, the tree checksums would differ.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.scheduler import StdRuntime
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine

# A node spec: (n_children, compute_ns, policy_index, use_mutex)
node_spec = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=0, max_value=3),
    st.booleans(),
)

POLICIES = ("async", "fork", "deferred", "sync")

tree_spec = st.lists(node_spec, min_size=1, max_size=40)


def _node_task(ctx, spec: list, index: int, depth: int, shared: dict):
    """Interpret node *index* of the spec; children are the next spec
    entries in breadth order (wrapping), bounded by depth."""
    n_children, compute_ns, policy_idx, use_mutex = spec[index % len(spec)]
    if depth >= 4:
        n_children = 0
    yield ctx.compute(compute_ns)
    if use_mutex:
        yield ctx.lock(shared["mutex"])
        shared["counter"] += 1
        yield ctx.unlock(shared["mutex"])
    futures = []
    for c in range(n_children):
        child_index = index * 3 + c + 1
        fut = yield ctx.async_(
            _node_task,
            spec,
            child_index,
            depth + 1,
            shared,
            policy=POLICIES[policy_idx],
        )
        futures.append(fut)
    if futures:
        child_sums = yield ctx.wait_all(futures)
        return index + sum(child_sums)
    return index


def _root(ctx, spec: list):
    shared = {"mutex": ctx.new_mutex(), "counter": 0}
    fut = yield ctx.async_(_node_task, spec, 0, 0, shared)
    total = yield ctx.wait(fut)
    return total, shared["counter"]


def _run(runtime_cls, spec: list, cores: int):
    engine = Engine()
    rt = runtime_cls(engine, Machine(), num_workers=cores)
    value = rt.run_to_completion(_root, spec)
    return value, rt, engine


@settings(max_examples=30)
@given(tree_spec, st.integers(min_value=1, max_value=8))
def test_property_runtimes_agree(spec, cores):
    hpx_value, hpx_rt, _ = _run(HpxRuntime, spec, cores)
    std_value, std_rt, _ = _run(StdRuntime, spec, cores)
    assert hpx_value == std_value
    assert hpx_rt.stats.live_tasks == 0
    assert std_rt.stats.live_threads == 0
    assert hpx_rt.stats.tasks_created == std_rt.stats.threads_created


@settings(max_examples=15)
@given(tree_spec, st.integers(min_value=1, max_value=8))
def test_property_hpx_deterministic(spec, cores):
    v1, rt1, e1 = _run(HpxRuntime, spec, cores)
    v2, rt2, e2 = _run(HpxRuntime, spec, cores)
    assert v1 == v2
    assert e1.now == e2.now
    assert rt1.stats.overhead_ns == rt2.stats.overhead_ns


@settings(max_examples=10)
@given(tree_spec)
def test_property_result_independent_of_core_count(spec):
    values = {cores: _run(HpxRuntime, spec, cores)[0] for cores in (1, 3, 7)}
    assert len(set(values.values())) == 1


@settings(max_examples=10)
@given(tree_spec, st.lists(st.integers(1, 8), min_size=1, max_size=4))
def test_property_throttling_mid_run_is_safe(spec, throttle_points):
    """Randomly shrinking/growing the worker pool mid-run never breaks
    correctness."""
    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=8)
    for i, count in enumerate(throttle_points):
        engine.schedule(5_000 * (i + 1), lambda c=count: rt.set_active_workers(c))
    value = rt.run_to_completion(_root, spec)
    baseline, _, _ = _run(HpxRuntime, spec, 8)
    assert value == baseline
    assert rt.stats.live_tasks == 0
