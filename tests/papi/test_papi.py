"""Simulated PAPI substrate."""

import pytest

from repro.model.work import Work
from repro.papi.events import PAPI_EVENTS, lookup_event
from repro.papi.hw import PapiSubstrate


def test_event_catalogue():
    names = {e.name for e in PAPI_EVENTS}
    assert "OFFCORE_REQUESTS:ALL_DATA_RD" in names
    assert "OFFCORE_REQUESTS:DEMAND_CODE_RD" in names
    assert "OFFCORE_REQUESTS:DEMAND_RFO" in names
    assert "PAPI_TOT_CYC" in names
    assert "PAPI_TOT_INS" in names


def test_lookup_event():
    event = lookup_event("PAPI_TOT_CYC")
    assert event.attr == "cycles"


def test_lookup_unknown_lists_available():
    with pytest.raises(KeyError, match="PAPI_TOT_CYC"):
        lookup_event("NOT_AN_EVENT")


def test_read_per_core_and_total(machine):
    papi = PapiSubstrate(machine)
    work = Work(cpu_ns=100, membytes=6400)
    t0 = machine.segment_begin(0, work)
    machine.segment_end(t0, work)
    t1 = machine.segment_begin(12, work)
    machine.segment_end(t1, work)
    per_core = papi.read("OFFCORE_REQUESTS:ALL_DATA_RD", 0)
    total = papi.read("OFFCORE_REQUESTS:ALL_DATA_RD")
    assert per_core == 70
    assert total == 140
    assert papi.read("OFFCORE_REQUESTS:ALL_DATA_RD", 5) == 0


def test_read_accepts_event_object(machine):
    papi = PapiSubstrate(machine)
    assert papi.read(lookup_event("PAPI_TOT_INS")) == 0


def test_offcore_requests_total(machine):
    papi = PapiSubstrate(machine)
    work = Work(cpu_ns=0, membytes=6400)
    t = machine.segment_begin(3, work)
    machine.segment_end(t, work)
    assert papi.offcore_requests_total() == 100
    assert papi.offcore_requests_total(3) == 100
    assert papi.offcore_requests_total(4) == 0
