"""Every example script runs end to end and prints what it promises."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "HPX-style runtime" in out
    assert "task duration" in out
    assert "ABORTED" in out  # the std::async fib failure


def test_inncabs_scaling():
    out = run_example("inncabs_scaling.py", "fib", "--cores", "1,4")
    assert "strong scaling: fib" in out
    assert "Abort" in out  # std fib fails
    assert "HPX" in out and "scaling:" in out


def test_counter_explorer():
    out = run_example("counter_explorer.py")
    assert "== discovery ==" in out
    assert "worker-thread#3" in out
    assert "sort finished" in out and "verified=True" in out
    assert "GB/s" in out


def test_adaptive_throttling():
    out = run_example("adaptive_throttling.py")
    assert "park-worker" in out
    assert "powered core-time saved" in out


def test_distributed_counters():
    out = run_example("distributed_counters.py")
    assert "locality 2" in out
    assert "cached re-resolution" in out
    assert "parcels sent" in out


def test_parallel_algorithms():
    out = run_example("parallel_algorithms.py")
    assert "3.14" in out
    assert "chunk" in out


def test_work_span_analysis():
    out = run_example("work_span_analysis.py", "fib")
    assert "avg parallelism" in out
    assert "Brent's bound holds" in out
