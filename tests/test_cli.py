"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_benchmarks(capsys):
    assert main(["list-benchmarks"]) == 0
    out = capsys.readouterr().out
    assert "fib" in out and "alignment" in out
    assert len(out.strip().splitlines()) == 14


def test_list_counters(capsys):
    assert main(["list-counters"]) == 0
    out = capsys.readouterr().out
    assert "/threads/time/average" in out
    assert "/papi/OFFCORE_REQUESTS:ALL_DATA_RD" in out


def test_list_counters_pattern(capsys):
    assert main(["list-counters", "--pattern", "/runtime/*"]) == 0
    out = capsys.readouterr().out
    assert "/runtime/uptime" in out
    assert "/threads" not in out


def test_list_counters_verbose(capsys):
    assert main(["list-counters", "--pattern", "/threads/idle-rate", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "worker-thread#0" in out
    assert "idle rate" in out.lower()


def test_run_hpx(capsys):
    code = main(["run", "fib", "--cores", "2", "--param", "n=10"])
    out = capsys.readouterr().out
    assert code == 0
    assert "verified=True" in out
    assert "/threads{locality#0/total}/time/average" in out


def test_run_std(capsys):
    code = main(["run", "fib", "--runtime", "std", "--cores", "2", "--param", "n=10"])
    out = capsys.readouterr().out
    assert code == 0
    assert "verified=True" in out


def test_run_abort_reports(capsys):
    code = main(["run", "fib", "--runtime", "std", "--cores", "4", "--param", "n=19"])
    out = capsys.readouterr().out
    assert code == 1
    assert "ABORT" in out


def test_run_explicit_counter(capsys):
    main(
        [
            "run",
            "fib",
            "--param",
            "n=9",
            "--print-counter",
            "/threads{locality#0/total}/count/cumulative",
        ]
    )
    out = capsys.readouterr().out
    assert "/threads{locality#0/total}/count/cumulative" in out
    assert "idle-rate" not in out


def test_run_no_counters(capsys):
    main(["run", "fib", "--param", "n=9", "--no-counters"])
    out = capsys.readouterr().out
    assert "counter,count,time,value" not in out


def test_bad_param_format():
    with pytest.raises(SystemExit):
        main(["run", "fib", "--param", "n:10"])


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit, match="unknown workload"):
        main(["run", "linpack"])


def test_figure_unknown():
    with pytest.raises(SystemExit, match="unknown figure"):
        main(["figure", "fig99"])


def test_figure_small(capsys):
    assert main(["figure", "fig3", "--samples", "1", "--cores-list", "1,2"]) == 0
    out = capsys.readouterr().out
    assert "strassen" in out


def test_table5_single(capsys):
    assert (main(["table5", "--benchmarks", "fib", "--samples", "1", "--cores-list", "1,2"]) == 0)
    out = capsys.readouterr().out
    assert "fib" in out and "very fine" in out


def test_run_with_preset(capsys):
    code = main(["run", "sort", "--preset", "small", "--no-counters"])
    out = capsys.readouterr().out
    assert code == 0
    assert "verified=True" in out


def test_run_preset_with_param_override(capsys):
    code = main(["run", "fib", "--preset", "small", "--param", "n=9", "--no-counters"])
    assert code == 0


def test_run_with_interval_query(capsys):
    code = main(
        [
            "run",
            "fib",
            "--param",
            "n=13",
            "--print-counter",
            "/threads{locality#0/total}/count/cumulative",
            "--print-counter-interval",
            "0.5",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    # Interval samples appear before the final summary line.
    assert out.count("/threads{locality#0/total}/count/cumulative") > 2


def test_run_with_interval_destination(tmp_path, capsys):
    dest = tmp_path / "counters.csv"
    code = main(
        [
            "run",
            "fib",
            "--param",
            "n=13",
            "--print-counter",
            "/threads{locality#0/total}/count/cumulative",
            "--print-counter-interval",
            "0.5",
            "--print-counter-destination",
            str(dest),
        ]
    )
    assert code == 0
    lines = dest.read_text().strip().splitlines()
    assert len(lines) >= 2
    assert all(line.startswith("/threads") for line in lines)


def test_campaign_and_compare_roundtrip(tmp_path, capsys):
    artifact = tmp_path / "campaign.json"
    argv = [
        "campaign",
        "--benchmarks",
        "fib",
        "--runtimes",
        "hpx",
        "--cores-list",
        "1,2",
        "--samples",
        "2",
        "--preset",
        "small",
        "--jobs",
        "2",
        "--cache-dir",
        str(tmp_path / "cache"),
        "--out",
        str(artifact),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "4 cells" in out and "executed 4" in out
    assert artifact.exists()

    # Same campaign again: everything is served from the cache.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "cache hits 4 (100%)" in out and "executed 0" in out

    assert main(["compare", str(artifact), str(artifact), "--threshold", "0.10"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_compare_exits_nonzero_on_regression(tmp_path, capsys):
    import json

    artifact = tmp_path / "campaign.json"
    assert (
        main(
            [
                "campaign",
                "--benchmarks",
                "fib",
                "--runtimes",
                "hpx",
                "--cores-list",
                "1",
                "--samples",
                "1",
                "--preset",
                "small",
                "--no-cache",
                "--out",
                str(artifact),
            ]
        )
        == 0
    )
    capsys.readouterr()
    data = json.loads(artifact.read_text())
    for cell in data["cells"]:
        cell["result"]["exec_time_ns"] = round(cell["result"]["exec_time_ns"] * 1.5)
    slower = tmp_path / "slower.json"
    slower.write_text(json.dumps(data))
    assert main(["compare", str(artifact), str(slower), "--threshold", "0.10"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "regression" in out


def test_figure_from_artifact(tmp_path, capsys):
    artifact = tmp_path / "campaign.json"
    assert (
        main(
            [
                "campaign",
                "--benchmarks",
                "strassen",
                "--cores-list",
                "1,2",
                "--samples",
                "1",
                "--preset",
                "small",
                "--no-cache",
                "--out",
                str(artifact),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["figure", "fig3", "--artifact", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "strassen" in out


def test_campaign_verbose_progress(tmp_path, capsys):
    assert (
        main(
            [
                "campaign",
                "--benchmarks",
                "fib",
                "--runtimes",
                "hpx",
                "--cores-list",
                "1",
                "--samples",
                "1",
                "--preset",
                "small",
                "--no-cache",
                "--verbose",
                "--out",
                str(tmp_path / "c.json"),
            ]
        )
        == 0
    )
    err = capsys.readouterr().err
    assert "[1/1] fib/hpx cores=1 sample=0" in err


def test_platform_list(capsys):
    assert main(["platform", "list"]) == 0
    out = capsys.readouterr().out
    assert "* ivybridge-2x10" in out  # default marked
    assert "epyc-2x64" in out and "desktop-1x8" in out


def test_platform_show(capsys):
    assert main(["platform", "show", "hybrid-4p8e"]) == 0
    out = capsys.readouterr().out
    assert "2 socket(s), 12 cores" in out
    assert "socket#0/core#0" in out  # hwloc-style tree
    assert "socket#1/core#7" in out


def test_platform_show_file(capsys, tmp_path):
    from repro.platform import get_platform, save_platform_file

    path = save_platform_file(get_platform("desktop-1x8"), tmp_path / "node.toml")
    assert main(["platform", "show", str(path)]) == 0
    assert "desktop-1x8" in capsys.readouterr().out


def test_platform_show_unknown(capsys):
    assert main(["platform", "show", "vax-11"]) == 2
    assert "unknown platform" in capsys.readouterr().err


def test_run_on_non_default_platform(capsys):
    code = main(["run", "fib", "--cores", "2", "--param", "n=10", "--platform", "epyc-2x64"])
    out = capsys.readouterr().out
    assert code == 0
    assert "verified=True" in out


def test_run_platform_changes_the_simulation(capsys):
    def exec_ms(argv):
        assert main(argv) == 0
        line = capsys.readouterr().out.splitlines()[0]
        return float(line.split(": ")[1].split(" ms")[0])

    argv = ["run", "fib", "--cores", "4", "--param", "n=16", "--no-counters"]
    assert exec_ms(argv) != exec_ms(argv + ["--platform", "desktop-1x8"])


def test_counters_list(capsys):
    assert main(["counters", "list"]) == 0
    out = capsys.readouterr().out
    assert "/threads/time/average" in out


def test_counters_list_pattern(capsys):
    assert main(["counters", "list", "--pattern", "/runtime/*"]) == 0
    out = capsys.readouterr().out
    assert "/runtime/uptime" in out
    assert "/threads" not in out


def test_counters_query_default_set_csv(capsys):
    assert main(["counters", "query", "--param", "n=10", "--cores", "2"]) == 0
    captured = capsys.readouterr()
    lines = captured.out.strip().splitlines()
    assert lines[0] == "name,instance,timestamp_ns,value,unit,run_id"
    assert any("/threads{locality#0/total}/time/average," in line for line in lines[1:])
    assert "fib [hpx, 2 cores]" in captured.err


def test_counters_query_expands_wildcards(capsys):
    assert (
        main(
            [
                "counters",
                "query",
                "/threads{locality#0/worker-thread#*}/count/cumulative",
                "--param",
                "n=10",
                "--cores",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "worker-thread#0" in out and "worker-thread#1" in out


def test_counters_query_jsonl_to_file(tmp_path, capsys):
    from repro.telemetry.sinks import parse_jsonl_stream

    dest = tmp_path / "stream.jsonl"
    assert (
        main(
            [
                "counters",
                "query",
                "--param",
                "n=10",
                "--cores",
                "2",
                "--format",
                "jsonl",
                "--out",
                str(dest),
            ]
        )
        == 0
    )
    assert capsys.readouterr().out == ""  # the stream went to the file
    frame = parse_jsonl_stream(dest.read_text())
    assert "/threads{locality#0/total}/idle-rate" in frame.totals()


def test_counters_query_interval_streams_samples(capsys):
    assert (
        main(
            [
                "counters",
                "query",
                "/threads{locality#0/total}/count/cumulative",
                "--param",
                "n=13",
                "--cores",
                "1",
                "--interval",
                "0.5",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    # Periodic rows plus the final evaluation, all on one counter.
    assert out.count("/threads{locality#0/total}/count/cumulative,") > 2


def test_counters_query_abort_exits_nonzero(capsys):
    code = main(
        ["counters", "query", "--runtime", "std", "--cores", "4", "--param", "n=19"]
    )
    assert code == 1
    assert "ABORT" in capsys.readouterr().err


def test_counters_query_bad_spec_errors(capsys):
    code = main(["counters", "query", "/no-such/counter", "--param", "n=8"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_workloads_list(capsys):
    assert main(["workloads", "list"]) == 0
    out = capsys.readouterr().out
    assert len(out.strip().splitlines()) == 16
    assert "taskbench" in out and "fib" in out and "fmm" in out
    assert "presets=default,large,small" in out


def test_workloads_show(capsys):
    assert main(["workloads", "show", "taskbench"]) == 0
    out = capsys.readouterr().out
    assert "taskbench (taskbench)" in out
    assert "shape = 'stencil_1d'" in out
    assert "preset small: width=8, steps=4" in out


def test_workloads_show_unknown(capsys):
    assert main(["workloads", "show", "linpack"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_run_accepts_workload_spec(capsys):
    code = main(["run", "taskbench:shape=trivial,width=4,steps=2", "--no-counters"])
    out = capsys.readouterr().out
    assert code == 0
    assert "verified=True" in out


def test_run_workload_option(capsys):
    code = main(["run", "--workload", "fib:n=9", "--no-counters"])
    out = capsys.readouterr().out
    assert code == 0
    assert "verified=True" in out


def test_run_rejects_two_workload_names():
    with pytest.raises(SystemExit, match="exactly one workload"):
        main(["run", "fib", "--workload", "sort"])


def test_run_param_overridden_by_embedded_spec_param(capsys):
    # Embedded spec parameters are more specific than --param.
    code = main(["run", "fib:n=9", "--param", "n=25", "--no-counters"])
    assert code == 0


def test_taskbench_cli_writes_deterministic_json(tmp_path, capsys):
    argv = [
        "taskbench",
        "--shape",
        "trivial",
        "--width",
        "8",
        "--steps",
        "2",
        "--runtime",
        "hpx",
        "--cores",
        "4",
        "--platform",
        "desktop-1x8",
    ]
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    assert main([*argv, "--out", str(first)]) == 0
    out = capsys.readouterr().out
    assert "METG(0.5) = " in out
    assert "[hpx, 4 cores, desktop-1x8]" in out
    assert main([*argv, "--out", str(second)]) == 0
    assert first.read_text() == second.read_text()
    payload = json.loads(first.read_text())
    assert [r["runtime"] for r in payload["results"]] == ["hpx"]
    assert payload["results"][0]["metg_ns"] is not None


def test_taskbench_cli_samples_out(tmp_path, capsys):
    samples = tmp_path / "samples.jsonl"
    code = main(
        [
            "taskbench",
            "--shape",
            "trivial",
            "--width",
            "8",
            "--steps",
            "2",
            "--runtime",
            "hpx",
            "--cores",
            "4",
            "--platform",
            "desktop-1x8",
            "--samples-out",
            str(samples),
            "--verbose",
        ]
    )
    assert code == 0
    assert "grain=" in capsys.readouterr().err  # --verbose probe stream
    rows = [json.loads(line) for line in samples.read_text().splitlines()]
    names = {row["name"] for row in rows}
    assert "/taskbench{locality#0/trivial}/metg@0.5" in names
    assert any("/efficiency@" in name for name in names)
