"""Thread-per-task kernel model: correctness, costs, failure modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.config import StdParams
from repro.kernel.scheduler import KMutex, ResourceExhausted, StdRuntime
from repro.model.work import Work
from repro.simcore.clock import ms
from repro.simcore.events import Engine
from repro.simcore.machine import Machine

from tests.conftest import fib_body


def run_fib(cores: int, n: int = 10, params: StdParams | None = None):
    engine = Engine()
    rt = StdRuntime(engine, Machine(), num_workers=cores, params=params)
    value = rt.run_to_completion(fib_body, n)
    return value, engine, rt


def test_fib_correct():
    value, _, _ = run_fib(1)
    assert value == 55


@pytest.mark.parametrize("cores", [2, 5, 10, 20])
def test_fib_correct_multicore(cores):
    value, _, _ = run_fib(cores)
    assert value == 55


def test_thread_per_task():
    _, _, rt = run_fib(2, n=8)
    # One thread per async + the main thread.
    assert rt.stats.threads_created == rt.stats.threads_completed
    assert rt.stats.live_threads == 0


def test_thread_creation_dominates_fine_grain():
    """std::async on ~0.5 us tasks is massively slower than the work.

    ``exec_ns`` includes the 18 us thread creations charged inside the
    parents' bodies; the pure task compute is well under 1 us per task.
    """
    _, engine, rt = run_fib(1, n=10)
    pure_compute_upper_bound = rt.stats.threads_created * 1_300
    assert engine.now > 10 * pure_compute_upper_bound


def test_breadth_first_live_thread_explosion():
    """The run queue admits every spawned thread: the live count grows
    to a large fraction of the total — the paper's failure mechanism."""
    _, _, rt = run_fib(4, n=12)
    assert rt.stats.peak_live_threads > rt.stats.threads_created * 0.3


def test_memory_abort():
    params = StdParams(ram_budget_bytes=StdParams().thread_commit_bytes * 50)
    engine = Engine()
    rt = StdRuntime(engine, Machine(), num_workers=4, params=params)
    with pytest.raises(ResourceExhausted):
        rt.run_to_completion(fib_body, 12)
    assert rt.aborted
    assert "exhausted" in (rt.abort_reason or "")


def test_max_live_threads_property():
    params = StdParams()
    assert params.max_live_threads == params.ram_budget_bytes // params.thread_commit_bytes


def test_preemption_of_long_segments():
    """A compute longer than the quantum is sliced when others wait."""

    def long_task(ctx):
        yield ctx.compute(Work(cpu_ns=ms(10)))
        return "long"

    def short_task(ctx):
        yield ctx.compute(1000)
        return "short"

    def parent(ctx):
        f1 = yield ctx.async_(long_task)
        f2 = yield ctx.async_(short_task)
        a = yield ctx.wait(f1)
        b = yield ctx.wait(f2)
        return (a, b)

    engine = Engine()
    rt = StdRuntime(engine, Machine(), num_workers=1, params=StdParams())
    assert rt.run_to_completion(parent) == ("long", "short")
    assert rt.stats.preemptions >= 1


def test_no_preemption_when_alone():
    def long_task(ctx):
        yield ctx.compute(Work(cpu_ns=ms(10)))
        return None

    engine = Engine()
    rt = StdRuntime(engine, Machine(), num_workers=2)
    rt.run_to_completion(long_task)
    assert rt.stats.preemptions == 0


def test_deferred_policy_inline():
    def child(ctx):
        yield ctx.compute(100)
        return 5

    def parent(ctx):
        fut = yield ctx.async_(child, policy="deferred")
        value = yield ctx.wait(fut)
        return value

    engine = Engine()
    rt = StdRuntime(engine, Machine(), num_workers=1)
    assert rt.run_to_completion(parent) == 5
    # Deferred children never become kernel threads.
    assert rt.stats.peak_live_threads == 1  # just main


def test_sync_policy_inline():
    def child(ctx):
        yield ctx.compute(100)
        return 6

    def parent(ctx):
        fut = yield ctx.async_(child, policy="sync")
        value = yield ctx.wait(fut)
        return value

    engine = Engine()
    rt = StdRuntime(engine, Machine(), num_workers=1)
    assert rt.run_to_completion(parent) == 6


def test_runqueue_lock_serializes():
    engine = Engine()
    rt = StdRuntime(engine, Machine(), num_workers=1)
    d1 = rt._lock_delay(100)
    d2 = rt._lock_delay(100)
    assert d1 == 100
    assert d2 == 200  # queued behind the first hold


def test_blocks_and_wakes_counted():
    _, _, rt = run_fib(2, n=8)
    assert rt.stats.blocks > 0
    assert rt.stats.wakes > 0


def test_exception_propagates():
    def boom(ctx):
        yield ctx.compute(1)
        raise ValueError("std task failed")

    engine = Engine()
    rt = StdRuntime(engine, Machine(), num_workers=2)
    with pytest.raises(ValueError, match="std task failed"):
        rt.run_to_completion(boom)


def test_deterministic():
    _, e1, rt1 = run_fib(4, n=11)
    _, e2, rt2 = run_fib(4, n=11)
    assert e1.now == e2.now
    assert rt1.stats.dispatches == rt2.stats.dispatches


class _FakeThread:
    def __init__(self, tid):
        self.tid = tid


def test_kmutex_fifo():
    m = KMutex(0)
    t1, t2 = _FakeThread(1), _FakeThread(2)
    assert m.try_acquire(t1)
    assert not m.try_acquire(t2)
    m.enqueue_waiter(t2)
    assert m.release(t1) is t2
    with pytest.raises(RuntimeError):
        m.release(t1)


def test_mutex_exclusion_kernel():
    def worker(ctx, mutex, log, k):
        yield ctx.lock(mutex)
        log.append(("enter", k))
        yield ctx.compute(500)
        log.append(("exit", k))
        yield ctx.unlock(mutex)
        return None

    def parent(ctx):
        mutex = ctx.new_mutex()
        log = []
        futs = []
        for k in range(4):
            futs.append((yield ctx.async_(worker, mutex, log, k)))
        yield ctx.wait_all(futs)
        return log

    engine = Engine()
    rt = StdRuntime(engine, Machine(), num_workers=4)
    log = rt.run_to_completion(parent)
    for i in range(0, len(log), 2):
        assert log[i] == ("enter", log[i][1])
        assert log[i + 1] == ("exit", log[i][1])


def test_hpx_beats_std_on_fine_grain():
    """The paper's headline: lightweight tasks vs pthreads."""
    from repro.runtime.scheduler import HpxRuntime

    engine_hpx = Engine()
    hpx = HpxRuntime(engine_hpx, Machine(), num_workers=4)
    hpx.run_to_completion(fib_body, 12)
    engine_std = Engine()
    std = StdRuntime(engine_std, Machine(), num_workers=4)
    std.run_to_completion(fib_body, 12)
    assert engine_std.now > 5 * engine_hpx.now


@settings(max_examples=8)
@given(st.integers(min_value=1, max_value=20), st.integers(min_value=3, max_value=10))
def test_property_fib_correct_everywhere(cores, n):
    expected = [0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55][n]
    value, _, rt = run_fib(cores, n=n)
    assert value == expected
    assert rt.stats.live_threads == 0


def test_kernel_scatter_binding():
    from repro.simcore.topology import BindMode

    engine = Engine()
    rt = StdRuntime(engine, Machine(), num_workers=4, bind_mode=BindMode.SCATTER)
    assert rt.run_to_completion(fib_body, 10) == 55
    sockets = {c.socket for c in rt.cores}
    assert sockets == {0, 1}
