"""The workload registry: discovery, presets, uniform errors."""

from __future__ import annotations

import pytest

from repro.inncabs.suite import available_benchmarks
from repro.taskbench import TASKBENCH_PRESETS, TaskBenchBenchmark
from repro.workloads import (
    WorkloadEntry,
    available_workloads,
    get_workload,
    register_workload,
    workload_preset_params,
)


def test_registry_is_inncabs_plus_taskbench_plus_fmm():
    names = available_workloads()
    assert names == sorted(names)
    assert set(names) == set(available_benchmarks()) | {"taskbench", "fmm"}
    assert len(names) == 16


def test_inncabs_suite_stays_inncabs_only():
    """Table V's surface is the 14 Inncabs apps; the registry is the superset."""
    assert "taskbench" not in available_benchmarks()


def test_get_workload_taskbench():
    entry = get_workload("taskbench")
    assert isinstance(entry.benchmark, TaskBenchBenchmark)
    assert entry.family == "taskbench"
    assert entry.presets == TASKBENCH_PRESETS
    assert entry.description


def test_get_workload_inncabs_carries_presets():
    entry = get_workload("fib")
    assert entry.family == "inncabs"
    assert "small" in entry.presets


def test_unknown_workload_error_lists_names():
    with pytest.raises(KeyError, match="taskbench"):
        get_workload("linpack")


def test_preset_params():
    assert workload_preset_params("taskbench", "default") == {}
    assert workload_preset_params("taskbench", "small") == {"width": 8, "steps": 4}
    assert workload_preset_params("taskbench", "large") == {"width": 128, "steps": 64}


def test_unknown_preset_error_lists_choices():
    with pytest.raises(KeyError, match="small"):
        workload_preset_params("taskbench", "huge")


def test_duplicate_registration_rejected():
    entry = get_workload("fib")
    with pytest.raises(ValueError, match="already registered"):
        register_workload(WorkloadEntry(name="fib", family="test", benchmark=entry.benchmark))
