"""WorkloadSpec: parsing, canonical spelling, eq/hash, serialization."""

from __future__ import annotations

import pytest

from repro.workloads import WorkloadSpec, as_workload_spec


# -- parsing -----------------------------------------------------------------


def test_parse_bare_name():
    spec = WorkloadSpec.parse("fib")
    assert spec.name == "fib"
    assert spec.params == {}
    assert spec.canonical() == "fib"


def test_parse_with_params_coerces_values():
    spec = WorkloadSpec.parse("taskbench:shape=fft,width=8,degree=2.5")
    assert spec.params == {"shape": "fft", "width": 8, "degree": 2.5}
    assert isinstance(spec.params["width"], int)
    assert isinstance(spec.params["degree"], float)
    assert isinstance(spec.params["shape"], str)


def test_canonical_sorts_parameters():
    a = WorkloadSpec.parse("taskbench:width=8,shape=fft")
    b = WorkloadSpec.parse("taskbench:shape=fft,width=8")
    assert a.canonical() == b.canonical() == "taskbench:shape=fft,width=8"
    assert str(a) == a.canonical()


def test_canonical_round_trips():
    for text in ("fib", "taskbench:shape=fft,width=8", "fib:n=10"):
        spec = WorkloadSpec.parse(text)
        assert WorkloadSpec.parse(spec.canonical()) == spec


@pytest.mark.parametrize(
    "bad",
    ["", "fib:n", "fib:=3", "fib:n=1,", "fib:,n=1"],
)
def test_parse_rejects_malformed(bad):
    with pytest.raises(ValueError):
        WorkloadSpec.parse(bad)


def test_name_rejects_reserved_characters():
    for name in ("a:b", "a,b", "a=b", ""):
        with pytest.raises(ValueError):
            WorkloadSpec(name)


# -- eq / hash ---------------------------------------------------------------


def test_equal_specs_hash_equal():
    a = WorkloadSpec("taskbench", {"width": 8, "shape": "fft"})
    b = WorkloadSpec.parse("taskbench:shape=fft,width=8")
    assert a == b
    assert hash(a) == hash(b)


def test_int_and_float_params_are_distinct():
    # 2 and 2.0 spell differently, so they must compare differently —
    # the eq/hash contract matches the canonical string.
    a = WorkloadSpec("fib", {"n": 2})
    b = WorkloadSpec("fib", {"n": 2.0})
    assert a != b
    assert a.canonical() != b.canonical()


def test_spec_is_usable_as_dict_key():
    cache = {WorkloadSpec.parse("taskbench:shape=fft,width=8"): 1}
    assert cache[WorkloadSpec("taskbench", {"width": 8, "shape": "fft"})] == 1


# -- canonical formatting edge cases -----------------------------------------


def test_canonical_rejects_unspellable_values():
    for params in ({"x": True}, {"x": "a,b"}, {"x": "k=v"}, {"x": [1]}):
        with pytest.raises(ValueError):
            WorkloadSpec("fib", params).canonical()


# -- serialization -----------------------------------------------------------


def test_json_round_trip():
    spec = WorkloadSpec.parse("taskbench:shape=fft,width=8")
    data = spec.to_json_dict()
    assert data == {"name": "taskbench", "params": {"shape": "fft", "width": 8}}
    assert WorkloadSpec.from_json_dict(data) == spec


def test_as_workload_spec_passes_specs_through():
    spec = WorkloadSpec.parse("fib:n=10")
    assert as_workload_spec(spec) is spec


@pytest.mark.parametrize("bad", ["fib:n=10", "fib", 7, None])
def test_as_workload_spec_rejects_non_specs(bad):
    """The legacy bare-string shim is gone: only WorkloadSpec is accepted,
    and the error points at WorkloadSpec.parse."""
    with pytest.raises(TypeError, match="WorkloadSpec.parse"):
        as_workload_spec(bad)


def test_session_run_rejects_bare_string():
    from repro.api import Session

    session = Session(runtime="hpx", cores=1)
    with pytest.raises(TypeError, match="WorkloadSpec.parse"):
        session.run("fib", params={"n": 6}, collect_counters=False)


def test_session_run_accepts_spec():
    from repro.api import Session

    session = Session(runtime="hpx", cores=1)
    result = session.run(WorkloadSpec.parse("fib:n=6"), collect_counters=False)
    assert result.verified


# -- resolution against the registry -----------------------------------------


def test_validate_merges_defaults_and_seed():
    resolved = WorkloadSpec.parse("fib:n=10").validate()
    assert resolved["n"] == 10
    assert "seed" in resolved


def test_validate_unknown_workload():
    with pytest.raises(KeyError, match="unknown workload"):
        WorkloadSpec("linpack").validate()


def test_validate_unknown_parameter():
    with pytest.raises(ValueError, match="unknown parameters"):
        WorkloadSpec("fib", {"zzz": 1}).validate()


def test_validate_extra_overlays_spec_params():
    resolved = WorkloadSpec.parse("fib:n=10").validate({"n": 12})
    assert resolved["n"] == 12


def test_build_returns_root_callable():
    root_fn, args, resolved = WorkloadSpec.parse("fib:n=5").build()
    assert callable(root_fn)
    assert resolved["n"] == 5
