"""Node model: specs, segments, hardware counters, L3 pressure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.work import Work
from repro.simcore.machine import Machine, MachineSpec


def test_default_spec_matches_table_iii():
    spec = MachineSpec()
    assert spec.sockets == 2
    assert spec.cores_per_socket == 10
    assert spec.total_cores == 20
    assert spec.freq_ghz == 2.5
    assert spec.l3_bytes_per_socket == 25 * 1024 * 1024


def test_socket_of():
    spec = MachineSpec()
    assert spec.socket_of(0) == 0
    assert spec.socket_of(9) == 0
    assert spec.socket_of(10) == 1
    assert spec.socket_of(19) == 1
    with pytest.raises(IndexError):
        spec.socket_of(20)
    with pytest.raises(IndexError):
        spec.socket_of(-1)


def test_cores_constructed(machine):
    assert len(machine.cores) == 20
    assert machine.cores[15].socket == 1


def test_cpu_only_segment_duration(machine):
    ticket = machine.segment_begin(0, Work(cpu_ns=1000))
    assert ticket.duration_ns == 1000
    assert not ticket.uses_memory
    machine.segment_end(ticket, Work(cpu_ns=1000))


def test_memory_segment_adds_time(machine):
    work = Work(cpu_ns=1000, membytes=7500)  # 1 us at 7.5 GB/s
    ticket = machine.segment_begin(0, work)
    assert ticket.duration_ns == 2000
    machine.segment_end(ticket, work)


def test_busy_accounting(machine):
    work = Work(cpu_ns=500)
    t = machine.segment_begin(3, work)
    machine.segment_end(t, work)
    assert machine.cores[3].busy_ns == 500


def test_hw_counters_incremented(machine):
    work = Work(cpu_ns=1000, membytes=6400)  # 100 cache lines
    t = machine.segment_begin(0, work)
    machine.segment_end(t, work)
    hw = machine.cores[0].hw
    assert hw.offcore_total() == 100
    assert hw.offcore_all_data_rd == 70
    assert hw.offcore_demand_rfo == 25
    assert hw.offcore_demand_code_rd == 5
    assert hw.cycles == round(t.duration_ns * 2.5)
    assert hw.instructions == round(1000 * 2.5 * 1.6)


def test_l3_pressure_inflates_traffic(machine):
    big = 30 * 1024 * 1024  # exceeds the 25 MB L3 on its own
    factor = machine.l3_pressure_factor(0, big)
    assert factor > 1.0
    assert factor <= machine.spec.l3_max_factor


def test_l3_no_pressure_small_ws(machine):
    assert machine.l3_pressure_factor(0, 1024) == 1.0


def test_working_set_accounting_balanced(machine):
    work = Work(cpu_ns=10, membytes=100, working_set=5000)
    t1 = machine.segment_begin(0, work)
    t2 = machine.segment_begin(1, work)
    machine.segment_end(t1, work)
    machine.segment_end(t2, work)
    assert machine._active_ws[0] == 0


def test_working_set_negative_detected(machine):
    work = Work(cpu_ns=10, membytes=100, working_set=5000)
    t = machine.segment_begin(0, work)
    machine.segment_end(t, work)
    with pytest.raises(RuntimeError):
        machine.segment_end(t, work)


def test_contention_slows_segments(machine):
    work = Work(cpu_ns=0, membytes=1_000_000)
    solo = machine.segment_begin(0, work)
    machine.segment_end(solo, work)
    # Fill socket 0 with active streams.
    tickets = [machine.segment_begin(c, work) for c in range(1, 10)]
    contended = machine.segment_begin(0, work)
    assert contended.duration_ns > solo.duration_ns
    for t in tickets:
        machine.segment_end(t, work)
    machine.segment_end(contended, work)


def test_sockets_have_independent_controllers(machine):
    work = Work(cpu_ns=0, membytes=1_000_000)
    tickets = [machine.segment_begin(c, work) for c in range(10)]  # fill socket 0
    remote = machine.segment_begin(10, work)  # socket 1: uncontended
    solo_time = Machine().segment_begin(0, work).duration_ns
    assert remote.duration_ns == solo_time
    for t in tickets:
        machine.segment_end(t, work)
    machine.segment_end(remote, work)


def test_total_offcore_bytes(machine):
    work = Work(cpu_ns=0, membytes=64_000)
    t = machine.segment_begin(0, work)
    machine.segment_end(t, work)
    assert machine.total_offcore_bytes() == 64_000


@given(st.integers(min_value=0, max_value=19), st.integers(min_value=0, max_value=10**6))
def test_property_segment_duration_nonnegative(core, membytes):
    machine = Machine()
    work = Work(cpu_ns=100, membytes=membytes)
    ticket = machine.segment_begin(core, work)
    assert ticket.duration_ns >= 100
    machine.segment_end(ticket, work)
