"""Topology and thread binding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simcore.machine import MachineSpec
from repro.simcore.topology import BindMode, Topology


@pytest.fixture
def topo():
    return Topology(MachineSpec())


def test_bind_mode_parse():
    assert BindMode.parse("compact") is BindMode.COMPACT
    assert BindMode.parse("SCATTER") is BindMode.SCATTER
    assert BindMode.parse("Balanced") is BindMode.BALANCED


def test_bind_mode_parse_error():
    with pytest.raises(ValueError, match="compact"):
        BindMode.parse("zigzag")


def test_compact_fills_socket0_first(topo):
    """The paper pins threads so sockets fill first."""
    assert topo.binding(4) == [0, 1, 2, 3]
    binding = topo.binding(12)
    assert binding[:10] == list(range(10))
    assert binding[10:] == [10, 11]


def test_scatter_round_robins(topo):
    assert topo.binding(4, BindMode.SCATTER) == [0, 10, 1, 11]


def test_balanced_splits_evenly(topo):
    assert topo.binding(4, BindMode.BALANCED) == [0, 1, 10, 11]
    assert topo.binding(5, BindMode.BALANCED) == [0, 1, 2, 10, 11]


def test_binding_bounds(topo):
    with pytest.raises(ValueError):
        topo.binding(0)
    with pytest.raises(ValueError):
        topo.binding(21)
    assert len(topo.binding(20)) == 20


def test_describe_core(topo):
    assert topo.describe_core(0) == "socket#0/core#0"
    assert topo.describe_core(13) == "socket#1/core#3"


def test_sockets_used(topo):
    assert topo.sockets_used([0, 1, 2]) == {0}
    assert topo.sockets_used([5, 15]) == {0, 1}


@given(
    st.integers(min_value=1, max_value=20),
    st.sampled_from(list(BindMode)),
)
def test_property_binding_valid_and_distinct(n, mode):
    topo = Topology(MachineSpec())
    binding = topo.binding(n, mode)
    assert len(binding) == n
    assert len(set(binding)) == n
    assert all(0 <= c < 20 for c in binding)


@given(st.integers(min_value=1, max_value=10))
def test_property_compact_single_socket_below_boundary(n):
    topo = Topology(MachineSpec())
    assert topo.sockets_used(topo.binding(n, BindMode.COMPACT)) == {0}


def test_binding_smt_within_physical_cores(topo):
    assert topo.binding_smt(8, smt=2) == topo.binding(8)


def test_binding_smt_wraps_onto_occupied_cores(topo):
    binding = topo.binding_smt(25, smt=2)
    assert len(binding) == 25
    assert binding[:20] == list(range(20))
    assert binding[20:] == [0, 1, 2, 3, 4]


def test_binding_smt_bounds(topo):
    with pytest.raises(ValueError):
        topo.binding_smt(41, smt=2)
    with pytest.raises(ValueError):
        topo.binding_smt(4, smt=0)
    assert len(topo.binding_smt(40, smt=2)) == 40
