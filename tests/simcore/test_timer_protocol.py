"""The Timer handle protocol: cancel / reschedule / active / cancelled.

Callers (schedulers, PeriodicQuery) program against this protocol
instead of reaching into queue internals, so its semantics are pinned
here.
"""

from __future__ import annotations

import pytest

from repro.simcore.events import Engine, SimulationError, Timer
from repro.simcore.events_legacy import LegacyEngine


def test_schedule_returns_active_timer():
    engine = Engine()
    timer = engine.schedule(10, lambda: None)
    assert isinstance(timer, Timer)
    assert timer.active
    assert not timer.cancelled
    assert timer.time == 10
    assert timer.seq == 0


def test_cancel_tombstones_and_is_idempotent():
    engine = Engine()
    fired = []
    timer = engine.schedule(10, fired.append, 1)
    timer.cancel()
    assert not timer.active
    assert timer.cancelled
    timer.cancel()  # idempotent: no error, no double bookkeeping
    assert engine.pending_events == 0
    engine.run()
    assert fired == []


def test_fired_timer_reports_inactive():
    engine = Engine()
    timer = engine.schedule(5, lambda: None)
    engine.run()
    assert not timer.active
    assert timer.cancelled


def test_reschedule_moves_and_resequences():
    """Rescheduling takes a fresh sequence number: the moved event fires
    after anything already scheduled at its new timestamp."""
    engine = Engine()
    order = []
    timer = engine.schedule(5, order.append, "moved")
    engine.schedule(20, order.append, "resident")
    assert timer.reschedule(at=20) is timer
    assert timer.active
    assert timer.time == 20
    engine.run()
    assert order == ["resident", "moved"]
    assert engine.now == 20


def test_reschedule_by_delay_is_relative_to_now():
    engine = Engine()
    times = []
    timer = engine.schedule(100, lambda: times.append(engine.now))
    engine.schedule(30, lambda: timer.reschedule(delay=5))
    engine.run()
    assert times == [35]


def test_reschedule_rearms_a_fired_timer():
    engine = Engine()
    count = []
    timer = engine.schedule(5, count.append, 1)
    engine.run()
    assert not timer.active
    timer.reschedule(delay=7)
    assert timer.active
    engine.run()
    assert count == [1, 1]
    assert engine.now == 12


def test_reschedule_validation():
    engine = Engine()
    timer = engine.schedule(10, lambda: None)
    with pytest.raises(ValueError):
        timer.reschedule()  # neither
    with pytest.raises(ValueError):
        timer.reschedule(5, at=7)  # both
    with pytest.raises(SimulationError):
        timer.reschedule(delay=-1)
    engine.schedule(50, lambda: None)
    engine.run(until=20)
    with pytest.raises(SimulationError):
        timer.reschedule(at=engine.now - 1)  # in the past


def test_event_alias_is_gone():
    # The deprecated _Event alias was removed; Timer is the only name.
    import repro.simcore.events as events

    assert not hasattr(events, "_Event")


def test_legacy_engine_handles_expose_active():
    engine = LegacyEngine()
    handle = engine.schedule(10, lambda: None)
    assert handle.active
    handle.cancel()
    assert not handle.active
    assert handle.cancelled
