"""Two-tier queue vs legacy heap: identical (time, seq) semantics.

Seeded randomized workloads (no Hypothesis needed — plain
``random.Random``) drive the new calendar-ring queue and the verbatim
pre-optimisation binary heap side by side and require identical pop
order, identical fire order, and identical final clocks.  This is the
determinism contract the campaign cache and the bench-core gate rely
on.
"""

from __future__ import annotations

import random

from repro.simcore.events import RING_SLOTS, Engine, EventQueue
from repro.simcore.events_legacy import LegacyEngine, LegacyEventQueue

SEEDS = (0, 1, 20160523)


def _random_workload(rng: random.Random, size: int) -> list[tuple[str, int]]:
    """A mix of pushes (near, tie-heavy, and far beyond the ring) and
    cancels of random outstanding handles."""
    ops: list[tuple[str, int]] = []
    for _ in range(size):
        roll = rng.random()
        if roll < 0.55:
            ops.append(("push", rng.randrange(0, 64)))  # near future, many ties
        elif roll < 0.75:
            ops.append(("push", rng.randrange(0, RING_SLOTS * 3)))  # heap spillover
        elif roll < 0.9:
            ops.append(("cancel", rng.randrange(1 << 30)))
        else:
            ops.append(("pop", 0))
    return ops


def test_queue_pop_order_matches_legacy_across_random_workloads():
    for seed in SEEDS:
        rng = random.Random(seed)
        ops = _random_workload(rng, 400)
        new_q, old_q = EventQueue(), LegacyEventQueue()
        new_handles, old_handles = [], []
        popped_new, popped_old = [], []
        for op, value in ops:
            if op == "push":
                new_handles.append(new_q.push(value, lambda: None))
                old_handles.append(old_q.push(value, lambda: None))
            elif op == "cancel" and new_handles:
                index = value % len(new_handles)
                new_handles[index].cancel()
                old_handles[index].cancel()
            elif op == "pop":
                new_event = new_q.pop()
                old_event = old_q.pop()
                assert (new_event is None) == (old_event is None)
                if new_event is not None:
                    popped_new.append((new_event.time, new_event.seq))
                    popped_old.append((old_event.time, old_event.seq))
        drained: list[tuple[int, int]] = []
        while True:
            new_event = new_q.pop()
            old_event = old_q.pop()
            assert (new_event is None) == (old_event is None)
            if new_event is None:
                break
            popped_new.append((new_event.time, new_event.seq))
            popped_old.append((old_event.time, old_event.seq))
            drained.append(popped_new[-1])
        assert popped_new == popped_old
        # Once pushes stop, the drain is globally (time, seq)-sorted.
        # (The interleaved phase need not be: a push can introduce a
        # time earlier than one already popped.)
        assert drained == sorted(drained)
        assert len(new_q) == len(old_q) == 0


def test_peek_time_matches_legacy_under_cancellation():
    for seed in SEEDS:
        rng = random.Random(seed)
        new_q, old_q = EventQueue(), LegacyEventQueue()
        handles = []
        for _ in range(200):
            t = rng.randrange(0, RING_SLOTS * 2)
            handles.append((new_q.push(t, lambda: None), old_q.push(t, lambda: None)))
        rng.shuffle(handles)
        for new_h, old_h in handles[: len(handles) // 2]:
            new_h.cancel()
            old_h.cancel()
        assert new_q.peek_time() == old_q.peek_time()
        assert len(new_q) == len(old_q)


def test_engine_fire_order_matches_legacy_with_nested_scheduling():
    """Full engine runs: randomized cascading events (each firing may
    schedule more, including zero-delay ties and far-future spills)
    fire in the same order at the same times on both engines."""
    for seed in SEEDS:

        def drive(engine_cls):
            rng = random.Random(seed)
            engine = engine_cls()
            fired: list[tuple[int, int]] = []

            def body(tag: int) -> None:
                fired.append((tag, engine.now))
                for _ in range(rng.randrange(0, 3)):
                    delay = rng.choice((0, 1, 7, 50, RING_SLOTS + 13))
                    engine.call_later(delay, body, rng.randrange(1 << 20))
                if rng.random() < 0.2:
                    handle = engine.schedule(rng.randrange(1, 40), body, -tag)
                    if rng.random() < 0.5:
                        handle.cancel()

            for tag in range(30):
                engine.schedule(rng.randrange(0, 100), body, tag)
            engine.run(until=40_000)  # bound the cascade
            return fired, engine.now, engine.events_processed

        new = drive(Engine)
        legacy = drive(LegacyEngine)
        assert new == legacy


def test_len_is_live_count_not_heap_size():
    q = EventQueue()
    handles = [q.push(i % 5, lambda: None) for i in range(100)]
    assert len(q) == 100
    for handle in handles[:60]:
        handle.cancel()
    assert len(q) == 40  # O(1) live count excludes tombstones
    for handle in handles[:60]:
        handle.cancel()  # double-cancel must not double-count
    assert len(q) == 40
