"""Memory-controller contention model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simcore.memory import MemoryController


def make(peak=40e9, per_core=8e9, cross=1.6):
    return MemoryController(0, peak_bw=peak, per_core_bw=per_core, cross_socket_factor=cross)


def test_rejects_nonpositive_bandwidth():
    with pytest.raises(ValueError):
        MemoryController(0, peak_bw=0, per_core_bw=1)
    with pytest.raises(ValueError):
        MemoryController(0, peak_bw=1, per_core_bw=-1)


def test_single_stream_gets_per_core_bw():
    mc = make()
    assert mc.effective_bandwidth(1) == 8e9


def test_many_streams_share_peak():
    mc = make()
    assert mc.effective_bandwidth(10) == 4e9  # 40/10
    assert mc.effective_bandwidth(4) == 8e9  # per-core still the limit (40/4=10>8)


def test_service_time_basic():
    mc = make()
    # 8 GB/s -> 1 byte per 0.125 ns; 8000 bytes -> 1000 ns.
    assert mc.service_time_ns(8000) == 1000


def test_service_time_zero_bytes():
    assert make().service_time_ns(0) == 0


def test_service_time_under_contention():
    mc = make()
    for _ in range(9):
        mc.stream_started(1000)
    # 10th stream: bandwidth = 40e9/10 = 4 GB/s -> 2000 ns for 8000 B.
    assert mc.service_time_ns(8000) == 2000


def test_cross_socket_penalty():
    mc = make()
    local = mc.service_time_ns(8000, cross_socket_fraction=0.0)
    remote = mc.service_time_ns(8000, cross_socket_fraction=1.0)
    assert remote == round(local * 1.6)


def test_cross_socket_fraction_validated():
    with pytest.raises(ValueError):
        make().service_time_ns(100, cross_socket_fraction=1.5)


def test_stream_accounting():
    mc = make()
    mc.stream_started(1000, cross_socket_fraction=0.5)
    assert mc.active_streams == 1
    assert mc.stats.bytes_total == 1000
    assert mc.stats.bytes_cross_socket == 500
    assert mc.stats.segments == 1
    mc.stream_finished()
    assert mc.active_streams == 0


def test_unbalanced_finish_rejected():
    with pytest.raises(RuntimeError):
        make().stream_finished()


@given(st.integers(min_value=1, max_value=10**9))
def test_property_service_time_monotonic_in_bytes(nbytes):
    mc = make()
    assert mc.service_time_ns(nbytes) <= mc.service_time_ns(nbytes * 2)


@given(st.integers(min_value=1, max_value=64))
def test_property_contention_never_speeds_up(streams):
    mc = make()
    assert mc.effective_bandwidth(streams) >= mc.effective_bandwidth(streams + 1)


@given(
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=0, max_value=1),
)
def test_property_cross_socket_never_faster(nbytes, fraction):
    mc = make()
    assert mc.service_time_ns(nbytes, cross_socket_fraction=fraction) >= mc.service_time_ns(nbytes)
