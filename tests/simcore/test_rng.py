"""Deterministic RNG derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.simcore.rng import derive_rng, derive_seed


def test_same_keys_same_seed():
    assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)


def test_different_keys_differ():
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(42, "a", 0) != derive_seed(42, "a", 1)
    assert derive_seed(41, "a") != derive_seed(42, "a")


def test_key_order_matters():
    assert derive_seed(1, "x", "y") != derive_seed(1, "y", "x")


def test_rng_reproducible():
    a = derive_rng(7, "stream").random(5)
    b = derive_rng(7, "stream").random(5)
    assert (a == b).all()


def test_rng_streams_independent():
    a = derive_rng(7, "s1").random(5)
    b = derive_rng(7, "s2").random(5)
    assert not (a == b).all()


def test_seed_is_64_bit():
    seed = derive_seed(123, "k")
    assert 0 <= seed < 2**64


@given(st.integers(), st.text(max_size=20), st.integers())
def test_property_deterministic(root, key1, key2):
    assert derive_seed(root, key1, key2) == derive_seed(root, key1, key2)


@given(st.integers(min_value=0, max_value=10**6))
def test_property_distinct_nodes(node):
    # Adjacent node ids should essentially never collide.
    assert derive_seed(5, "uts", node) != derive_seed(5, "uts", node + 1)
