"""Time-unit conversions."""

from hypothesis import given
from hypothesis import strategies as st

from repro.simcore.clock import MS, NS_PER_S, US, from_us, ms, ns_to_s, ns_to_us, s, us


def test_constants():
    assert US == 1_000
    assert MS == 1_000_000
    assert NS_PER_S == 1_000_000_000


def test_us():
    assert us(1) == 1_000
    assert us(2.5) == 2_500
    assert us(0) == 0


def test_ms():
    assert ms(1) == 1_000_000
    assert ms(0.001) == 1_000


def test_s():
    assert s(1) == NS_PER_S
    assert s(0.5) == 500_000_000


def test_from_us_alias():
    assert from_us(3.7) == us(3.7)


def test_rounding():
    assert us(1.4999) == 1_500
    assert us(0.0004) == 0


def test_ns_to_us():
    assert ns_to_us(1_500) == 1.5
    assert ns_to_us(0) == 0.0


def test_ns_to_s():
    assert ns_to_s(NS_PER_S) == 1.0


@given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
def test_round_trip_close(value):
    assert abs(ns_to_us(us(value)) - value) <= 0.0005


@given(st.integers(min_value=0, max_value=10**15))
def test_integer_types(value):
    assert isinstance(us(value), int)
    assert isinstance(ms(value), int)
    assert isinstance(s(value), int)
