"""Discrete-event engine semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simcore.events import Engine, EventQueue, SimulationError


def test_engine_starts_at_zero(engine):
    assert engine.now == 0
    assert engine.pending_events == 0


def test_schedule_and_run(engine):
    fired = []
    engine.schedule(10, lambda: fired.append(engine.now))
    engine.schedule(5, lambda: fired.append(engine.now))
    engine.run()
    assert fired == [5, 10]
    assert engine.now == 10


def test_fifo_tie_break(engine):
    """Events at the same time fire in scheduling order."""
    fired = []
    for i in range(5):
        engine.schedule(7, lambda i=i: fired.append(i))
    engine.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_schedule_at_past_rejected(engine):
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)


def test_cancellation(engine):
    fired = []
    handle = engine.schedule(5, lambda: fired.append("cancelled"))
    engine.schedule(3, lambda: fired.append("kept"))
    handle.cancel()
    engine.run()
    assert fired == ["kept"]


def test_nested_scheduling(engine):
    fired = []

    def outer():
        fired.append(("outer", engine.now))
        engine.schedule(5, lambda: fired.append(("inner", engine.now)))

    engine.schedule(10, outer)
    engine.run()
    assert fired == [("outer", 10), ("inner", 15)]


def test_run_until(engine):
    fired = []
    engine.schedule(5, lambda: fired.append(5))
    engine.schedule(50, lambda: fired.append(50))
    engine.run(until=10)
    assert fired == [5]
    assert engine.now == 5  # the clock does not fast-forward
    engine.run()
    assert fired == [5, 50]


def test_stop(engine):
    fired = []

    def stopper():
        fired.append("first")
        engine.stop("test reason")

    engine.schedule(1, stopper)
    engine.schedule(2, lambda: fired.append("second"))
    engine.run()
    assert fired == ["first"]
    assert engine.stop_reason == "test reason"
    # A fresh run continues with the remaining events.
    engine.run()
    assert fired == ["first", "second"]


def test_event_budget():
    engine = Engine(max_events=10)

    def reschedule():
        engine.schedule(1, reschedule)

    engine.schedule(1, reschedule)
    with pytest.raises(SimulationError, match="budget"):
        engine.run()


def test_events_processed_counter(engine):
    for i in range(7):
        engine.schedule(i, lambda: None)
    engine.run()
    assert engine.events_processed == 7


def test_queue_len_skips_cancelled():
    q = EventQueue()
    h1 = q.push(5, lambda: None)
    q.push(6, lambda: None)
    h1.cancel()
    assert len(q) == 1
    assert q.peek_time() == 6


def test_queue_pop_order():
    q = EventQueue()
    q.push(5, lambda: "b")
    q.push(3, lambda: "a")
    q.push(5, lambda: "c")
    assert q.pop().time == 3
    first_five = q.pop()
    second_five = q.pop()
    assert (first_five.time, second_five.time) == (5, 5)
    assert first_five.seq < second_five.seq
    assert q.pop() is None


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
def test_property_fires_in_time_order(times):
    engine = Engine()
    fired = []
    for t in times:
        engine.schedule(t, lambda t=t: fired.append(t))
    engine.run()
    assert fired == sorted(times)
    assert engine.now == max(times)


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=100), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_cancelled_never_fire(spec):
    engine = Engine()
    fired = []
    handles = []
    for t, cancel in spec:
        handles.append((engine.schedule(t, lambda t=t: fired.append(t)), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    engine.run()
    expected = sorted(t for (t, cancel) in spec if not cancel)
    assert fired == expected
