"""METG(eps) sweep: bracketing, determinism, samples, the golden fixture."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.taskbench import MetgResult, metg_sweep
from repro.taskbench.metg import GRAIN_CAP_NS, REL_TOL_SHIFT

FIXTURE = Path(__file__).resolve().parent.parent / "fixtures" / "metg_trivial_ivybridge.json"

QUICK = dict(shape="trivial", width=16, steps=4, cores=4, platform="desktop-1x8")


def test_sweep_finds_a_grain():
    result = metg_sweep(**QUICK)
    assert isinstance(result, MetgResult)
    assert result.metg_ns is not None
    assert result.runtime == "hpx"
    assert result.platform == "desktop-1x8"
    assert result.target_efficiency == 0.5
    # The winning grain really meets the target, and the probe record
    # contains a failing grain below it (the bracket's lower edge).
    by_grain = {p.grain_ns: p for p in result.probes}
    assert by_grain[result.metg_ns].efficiency >= result.target_efficiency
    assert any(
        p.grain_ns < result.metg_ns and p.efficiency < result.target_efficiency
        for p in result.probes
    )


def test_sweep_respects_relative_tolerance():
    result = metg_sweep(**QUICK)
    assert result.metg_ns is not None
    failing = [
        p.grain_ns
        for p in result.probes
        if p.efficiency < result.target_efficiency and p.grain_ns < result.metg_ns
    ]
    lo = max(failing)
    assert result.metg_ns - lo <= max(1, result.metg_ns >> REL_TOL_SHIFT)


def test_sweep_is_bit_identical():
    a = metg_sweep(**QUICK)
    b = metg_sweep(**QUICK)
    assert a.to_json_dict() == b.to_json_dict()


def test_unreachable_target_returns_none():
    # One point on four cores cannot exceed 25 % efficiency: the sweep
    # must give up at the cap rather than loop forever.
    result = metg_sweep(shape="trivial", width=1, steps=2, cores=4, eps=0.1, platform="desktop-1x8")
    assert result.metg_ns is None
    assert max(p.grain_ns for p in result.probes) >= GRAIN_CAP_NS


def test_progress_sees_every_probe():
    seen = []
    result = metg_sweep(**QUICK, progress=seen.append)
    assert seen == list(result.probes)


@pytest.mark.parametrize("kwargs", [dict(eps=0.0), dict(eps=1.0), dict(grain_start_ns=0)])
def test_sweep_validates_inputs(kwargs):
    with pytest.raises(ValueError):
        metg_sweep(**{**QUICK, **kwargs})


def test_samples_follow_the_counter_name_grammar():
    result = metg_sweep(**QUICK)
    samples = result.to_samples("run-1")
    efficiency = [s for s in samples if "/efficiency@" in s.name]
    metg = [s for s in samples if "/metg@" in s.name]
    assert len(efficiency) == len(result.probes)
    assert all(s.name.startswith("/taskbench{locality#0/trivial}/") for s in samples)
    assert all(s.unit == "0.01%" for s in efficiency)
    assert [s.name for s in metg] == ["/taskbench{locality#0/trivial}/metg@0.5"]
    assert metg[0].value == float(result.metg_ns)
    assert metg[0].unit == "ns"
    assert all(s.run_id == "run-1" for s in samples)


# -- the golden fixture ------------------------------------------------------


def test_golden_metg_fixture():
    """The committed sweep on the paper's node reproduces bit for bit.

    The fixture is the ``repro taskbench --shape trivial --width 64
    --steps 16 --platform ivybridge-2x10 --out ...`` JSON; regenerate
    it with that command if an intentional model change shifts METG.
    """
    golden = json.loads(FIXTURE.read_text())
    results = {
        runtime: metg_sweep(
            shape="trivial",
            width=64,
            steps=16,
            runtime=runtime,
            cores=20,
            platform="ivybridge-2x10",
        )
        for runtime in ("hpx", "std")
    }
    assert golden["results"] == [
        results["hpx"].to_json_dict(),
        results["std"].to_json_dict(),
    ]
    # The paper's headline contrast: thread-per-task needs a far coarser
    # grain than the user-level task runtime to stay efficient.
    assert results["std"].metg_ns > 10 * results["hpx"].metg_ns
