"""Graph-generator properties: closed-form counts, acyclicity, determinism."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.taskbench import SHAPES, build_graph, graph_checksum

widths = st.integers(min_value=1, max_value=64)
steps_ = st.integers(min_value=1, max_value=16)
pow2_widths = st.integers(min_value=0, max_value=6).map(lambda k: 1 << k)
seeds = st.integers(min_value=0, max_value=2**63)


# -- closed-form node and edge counts ----------------------------------------


@given(widths, steps_)
def test_trivial_counts(width, steps):
    graph = build_graph("trivial", width, steps)
    assert graph.node_count == width * steps
    assert graph.edge_count == 0


@given(widths, steps_)
def test_stencil_counts(width, steps):
    graph = build_graph("stencil_1d", width, steps)
    assert graph.node_count == width * steps
    per_step = 3 * width - 2 if width >= 2 else 1
    assert graph.edge_count == (steps - 1) * per_step


@given(pow2_widths, steps_)
def test_fft_counts(width, steps):
    graph = build_graph("fft", width, steps)
    assert graph.node_count == width * steps
    per_step = 2 * width if width >= 2 else 1
    assert graph.edge_count == (steps - 1) * per_step


@given(widths, steps_)
def test_tree_counts(width, steps):
    graph = build_graph("tree", width, steps)
    # Rows halve (rounding up), never below one point.
    for prev, cur in zip(graph.row_widths, graph.row_widths[1:]):
        assert cur == max(1, (prev + 1) // 2)
    assert graph.node_count == sum(graph.row_widths)
    # Fan-in: every point of a row feeds exactly one point of the next.
    assert graph.edge_count == sum(graph.row_widths[:-1])


@given(widths, steps_, seeds, st.floats(min_value=0.0, max_value=4.0))
def test_random_counts_and_self_edge(width, steps, seed, degree):
    graph = build_graph("random", width, steps, seed=seed, degree=min(degree, width))
    assert graph.node_count == width * steps
    for row in graph.parents[1:]:
        for p, parents in enumerate(row):
            assert p in parents  # every point keeps its own predecessor
            assert len(parents) == len(set(parents))
    assert graph.edge_count >= (steps - 1) * width


# -- structure ---------------------------------------------------------------


@pytest.mark.parametrize("shape", SHAPES)
def test_acyclic_by_construction(shape):
    width = 16  # power of two so fft is admissible
    graph = build_graph(shape, width, 8, seed=3)
    assert graph.parents[0] == tuple(() for _ in range(width))
    for t in range(1, len(graph.row_widths)):
        prev_width = graph.row_widths[t - 1]
        assert len(graph.parents[t]) == graph.row_widths[t]
        for parents in graph.parents[t]:
            assert all(0 <= q < prev_width for q in parents)


def test_nodes_iterates_row_major():
    graph = build_graph("tree", 5, 3)
    nodes = list(graph.nodes())
    assert len(nodes) == graph.node_count
    assert nodes == sorted(nodes)


# -- determinism -------------------------------------------------------------


@given(seeds)
def test_random_regenerates_bit_identical(seed):
    a = build_graph("random", 12, 5, seed=seed, degree=2.0)
    b = build_graph("random", 12, 5, seed=seed, degree=2.0)
    assert a == b


def test_random_seed_changes_graph():
    a = build_graph("random", 32, 8, seed=1)
    b = build_graph("random", 32, 8, seed=2)
    assert a.parents != b.parents


def test_checksum_deterministic_and_seed_sensitive():
    graph = build_graph("stencil_1d", 8, 4)
    assert graph_checksum(graph, 7) == graph_checksum(graph, 7)
    assert graph_checksum(graph, 7) != graph_checksum(graph, 8)


# -- validation --------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs,fragment",
    [
        (dict(shape="mesh", width=4, steps=2), "unknown shape"),
        (dict(shape="trivial", width=0, steps=2), "width and steps"),
        (dict(shape="trivial", width=4, steps=0), "width and steps"),
        (dict(shape="fft", width=6, steps=2), "power-of-two"),
        (dict(shape="random", width=4, steps=2, degree=5.0), "degree"),
        (dict(shape="random", width=4, steps=2, degree=-1.0), "degree"),
    ],
)
def test_invalid_configurations_rejected(kwargs, fragment):
    with pytest.raises(ValueError, match=fragment):
        build_graph(kwargs.pop("shape"), kwargs.pop("width"), kwargs.pop("steps"), **kwargs)
