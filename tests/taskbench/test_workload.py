"""Task Bench lowered onto both runtimes: verification and counter parity."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.taskbench import TaskBenchBenchmark, build_graph, graph_checksum
from repro.workloads import WorkloadSpec

SPEC = WorkloadSpec.parse("taskbench:shape=stencil_1d,width=8,steps=4,grain_ns=2000")

COUNTERS = (
    "/threads{locality#0/total}/count/cumulative",
    "/threads{locality#0/total}/count/created",
    "/taskbench{locality#0/total}/efficiency",
)


@pytest.mark.parametrize("runtime", ["hpx", "std"])
def test_runs_verified_on_both_runtimes(runtime):
    result = Session(runtime=runtime, cores=4).run(SPEC, counters=COUNTERS)
    assert result.verified
    # 32 node tasks plus the driver, regardless of the backend.
    assert result.counters["/threads{locality#0/total}/count/cumulative"] == 33
    efficiency = result.counters["/taskbench{locality#0/total}/efficiency"]
    assert 0.0 <= efficiency <= 10000.0  # 0.01 % units


def test_counter_parity_hpx_vs_std():
    """The same graph reports identical task counts through either backend."""
    by_runtime = {
        runtime: Session(runtime=runtime, cores=4).run(SPEC, counters=COUNTERS)
        for runtime in ("hpx", "std")
    }
    for name in COUNTERS[:2]:  # task counts; efficiency legitimately differs
        assert by_runtime["hpx"].counters[name] == by_runtime["std"].counters[name]
    assert by_runtime["hpx"].result is None and by_runtime["std"].result is None


def test_run_is_deterministic():
    a = Session(runtime="hpx", cores=4).run(SPEC, keep_result=True)
    b = Session(runtime="hpx", cores=4).run(SPEC, keep_result=True)
    assert a.result == b.result
    assert a.exec_time_ns == b.exec_time_ns


def test_result_matches_sequential_reference():
    result = Session(runtime="hpx", cores=2).run(SPEC, keep_result=True)
    graph = build_graph("stencil_1d", 8, 4, seed=20160523)
    assert result.result == graph_checksum(graph, 20160523)


def test_verify_rejects_wrong_checksum():
    bench = TaskBenchBenchmark()
    params = bench.params_with_defaults({"shape": "trivial", "width": 4, "steps": 2})
    assert not bench.verify(0xDEAD, params)


def test_task_count_helper_matches_graph():
    assert TaskBenchBenchmark.task_count("tree", 8, 4) == 8 + 4 + 2 + 1
    assert TaskBenchBenchmark.task_count("trivial", 16, 8) == 128


@pytest.mark.parametrize("shape", ["trivial", "fft", "tree", "random"])
def test_every_shape_executes(shape):
    spec = WorkloadSpec("taskbench", {"shape": shape, "width": 8, "steps": 3, "grain_ns": 500})
    assert Session(runtime="hpx", cores=4).run(spec).verified
