"""APEX-style policy engine and throttling."""

import pytest

from repro.apex.policy import PolicyDecision, PolicyEngine, PolicyRule
from repro.apex.throttle import IDLE_RATE_COUNTER, ConcurrencyThrottlePolicy
from repro.simcore.clock import us

from tests.conftest import fib_body


def make_engine(registry, hpx4, engine, rules=(), period=us(50)):
    return PolicyEngine(
        engine=engine,
        runtime=hpx4,
        registry=registry,
        counter_specs=["/threads/idle-rate", "/threads/count/cumulative"],
        period_ns=period,
        rules=rules,
    )


def test_engine_samples_periodically(registry, hpx4, engine):
    pe = make_engine(registry, hpx4, engine)
    pe.start()
    hpx4.run_to_completion(fib_body, 12)
    assert len(pe.samples) >= 2
    for sample in pe.samples:
        assert IDLE_RATE_COUNTER in sample


def test_engine_stops_at_quiescence(registry, hpx4, engine):
    pe = make_engine(registry, hpx4, engine)
    pe.start()
    hpx4.run_to_completion(fib_body, 10)
    engine.run()
    assert not pe._running
    assert engine.pending_events == 0


def test_rules_fire_and_are_recorded(registry, hpx4, engine):
    def always(sample, now):
        return PolicyDecision(action="noop", value=now)

    pe = make_engine(registry, hpx4, engine, rules=[PolicyRule("always", always)])
    pe.start()
    hpx4.run_to_completion(fib_body, 12)
    assert len(pe.history) == len(pe.samples)
    assert all(d.rule == "always" for d in pe.history)


def test_rules_returning_none_record_nothing(registry, hpx4, engine):
    pe = make_engine(registry, hpx4, engine, rules=[PolicyRule("quiet", lambda s, t: None)])
    pe.start()
    hpx4.run_to_completion(fib_body, 12)
    assert pe.history == []


def test_invalid_period_rejected(registry, hpx4, engine):
    with pytest.raises(ValueError):
        make_engine(registry, hpx4, engine, period=0)


def test_throttle_parks_idle_workers(engine, machine):
    """A serial chain on many workers: the throttle sheds them."""
    from repro.runtime.scheduler import HpxRuntime

    rt = HpxRuntime(engine, machine, num_workers=8)

    def serial_chain(ctx, k):
        if k == 0:
            return 0
        yield ctx.compute(20_000)
        fut = yield ctx.async_(serial_chain, k - 1)
        value = yield ctx.wait(fut)
        return value + 1

    # The fixture registry is bound to hpx4; build one against rt.
    from repro.counters.base import CounterEnvironment
    from repro.counters.registry import build_default_registry

    env = CounterEnvironment(engine=engine, runtime=rt, machine=machine)
    pe = PolicyEngine(
        engine=engine,
        runtime=rt,
        registry=build_default_registry(env),
        counter_specs=[IDLE_RATE_COUNTER],
        period_ns=us(100),
        rules=[ConcurrencyThrottlePolicy(runtime=rt, upper_idle=3000).rule()],
    )
    pe.start()
    value = rt.run_to_completion(serial_chain, 100)
    assert value == 100
    parked = [d for d in pe.history if d.decision.action == "park-worker"]
    assert parked  # idle workers were shed
    assert rt.active_workers < 8


def test_throttle_requires_idle_rate_counter(registry, hpx4, engine):
    policy = ConcurrencyThrottlePolicy(runtime=hpx4)
    with pytest.raises(KeyError, match="idle-rate"):
        policy.rule().fn({}, 0)


def test_throttle_unparks_under_load(registry, hpx4, engine):
    hpx4.set_active_workers(1)
    policy = ConcurrencyThrottlePolicy(runtime=hpx4, lower_idle=10_001)  # always grow
    decision = policy.rule().fn({IDLE_RATE_COUNTER: 0.0}, 0)
    assert decision is not None and decision.action == "unpark-worker"
    assert hpx4.active_workers == 2
