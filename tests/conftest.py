"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.counters.base import CounterEnvironment
from repro.counters.registry import build_default_registry
from repro.experiments.config import ExperimentConfig
from repro.papi.hw import PapiSubstrate
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine, MachineSpec

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def machine() -> Machine:
    return Machine(MachineSpec())


@pytest.fixture
def hpx4(engine: Engine, machine: Machine) -> HpxRuntime:
    """A 4-worker HPX runtime on the default machine."""
    return HpxRuntime(engine, machine, num_workers=4)


@pytest.fixture
def counter_env(engine: Engine, machine: Machine, hpx4: HpxRuntime) -> CounterEnvironment:
    return CounterEnvironment(
        engine=engine, runtime=hpx4, machine=machine, papi=PapiSubstrate(machine)
    )


@pytest.fixture
def registry(counter_env: CounterEnvironment):
    return build_default_registry(counter_env)


@pytest.fixture
def tiny_config() -> ExperimentConfig:
    """One sample, few cores: fast experiment configuration for tests."""
    return ExperimentConfig(samples=1, core_counts=(1, 2, 4))


def fib_body(ctx, n: int):
    """Tiny shared benchmark body used across runtime tests."""
    if n < 2:
        yield ctx.compute(500)
        return n
    fa = yield ctx.async_(fib_body, n - 1)
    fb = yield ctx.async_(fib_body, n - 2)
    a = yield ctx.wait(fa)
    b = yield ctx.wait(fb)
    yield ctx.compute(700, membytes=128)
    return a + b
