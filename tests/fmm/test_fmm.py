"""The FMM mini-app: per-core-type kernel variants through app counters.

The tentpole's proof workload: on the asymmetric ``hybrid-4p8e``
preset the P-cores run the vectorized P2P kernel and the E-cores the
scalar one, and the per-variant counters registered through the public
provider API read differently for the two core types.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro.fmm
from repro.api import Session, WorkloadSpec
from repro.fmm import VARIANTS, FmmBenchmark, variant_for_core
from repro.platform.presets import get_platform

VARIANT_COUNTERS = [f"/fmm{{locality#0/total}}/p2p-subgrids@{v}" for v in VARIANTS]


def _variant_values(result) -> dict[str, float]:
    return {
        variant: result.counters[name]
        for variant, name in zip(VARIANTS, VARIANT_COUNTERS)
    }


# -- variant selection --------------------------------------------------------


def test_variant_for_core_on_hybrid():
    platform = get_platform("hybrid-4p8e")
    # Socket#0: 4 P-cores (fastest clock) -> vectorized.
    for core in range(4):
        assert variant_for_core(platform, core) == "vectorized"
    # Socket#1: 8 E-cores (slower clock) -> scalar.
    for core in range(4, 12):
        assert variant_for_core(platform, core) == "scalar"


def test_variant_for_core_homogeneous_is_vectorized():
    platform = get_platform("ivybridge-2x10")
    for core in range(platform.total_cores):
        assert variant_for_core(platform, core) == "vectorized"


# -- end-to-end runs ----------------------------------------------------------


def test_hybrid_run_splits_variants_per_core_type():
    session = Session(runtime="hpx", cores=12, platform="hybrid-4p8e")
    result = session.run(WorkloadSpec.parse("fmm"), counters=VARIANT_COUNTERS)
    assert result.verified
    values = _variant_values(result)
    # 48 subgrids over 12 driver batches: 4 P-core batches x 4 subgrids
    # vectorized, 8 E-core batches x 4 subgrids scalar.
    assert values["vectorized"] == 16.0
    assert values["scalar"] == 32.0
    assert values["legacy"] == 0.0
    assert values["vectorized"] != values["scalar"]


def test_homogeneous_run_is_all_vectorized():
    session = Session(runtime="hpx", cores=4)
    result = session.run(WorkloadSpec.parse("fmm:subgrids=20"), counters=VARIANT_COUNTERS)
    assert result.verified
    values = _variant_values(result)
    assert values["vectorized"] == 20.0
    assert values["scalar"] == 0.0 and values["legacy"] == 0.0


def test_std_runtime_runs_fmm_too():
    session = Session(runtime="std", cores=2)
    result = session.run(WorkloadSpec.parse("fmm:subgrids=8"), counters=VARIANT_COUNTERS)
    assert result.verified
    assert _variant_values(result)["vectorized"] == 8.0


def test_multipole_counter_and_verify():
    session = Session(runtime="hpx", cores=4)
    result = session.run(
        WorkloadSpec.parse("fmm:subgrids=12,neighbors=7"),
        counters=["/fmm{locality#0/total}/multipole-evals"],
        keep_result=True,
    )
    assert result.verified
    assert result.counters["/fmm{locality#0/total}/multipole-evals"] == 12.0
    assert result.result == {"multipole_evals": 12, "p2p_interactions": 12 * 7}


def test_back_to_back_runs_read_per_run_deltas():
    """Framework reads are baselined per run even though the app's
    module-level counters accumulate across runs in one process."""
    session = Session(runtime="hpx", cores=4)
    spec = WorkloadSpec.parse("fmm:subgrids=12")
    first = session.run(spec, counters=VARIANT_COUNTERS)
    second = session.run(spec, counters=VARIANT_COUNTERS)
    assert _variant_values(first) == _variant_values(second)


def test_fmm_presets_registered():
    from repro.workloads import workload_preset_params

    assert workload_preset_params("fmm", "small") == {"subgrids": 16}
    assert workload_preset_params("fmm", "large") == {"subgrids": 192}
    assert workload_preset_params("fmm", "default") == {}


def test_fmm_verify_rejects_wrong_result():
    bench = FmmBenchmark()
    params = bench.params_with_defaults(None)
    assert not bench.verify({"multipole_evals": 0, "p2p_interactions": 0}, params)


# -- the import boundary ------------------------------------------------------


def test_fmm_uses_public_counter_api_only():
    """repro.fmm must not import repro.counters internals.

    The mini-app proves the *public* provider surface is sufficient:
    only ``from repro.counters import ...`` (the package front door) is
    allowed — no submodule imports.
    """
    package_dir = Path(repro.fmm.__file__).parent
    forbidden = re.compile(r"(from|import)\s+repro\.counters\.")
    for source_file in sorted(package_dir.glob("*.py")):
        text = source_file.read_text()
        match = forbidden.search(text)
        assert match is None, (
            f"{source_file.name} imports a repro.counters submodule "
            f"({match.group(0)!r}); use the public repro.counters API"
        )


def test_fmm_counters_listed_with_fmm_workload(capsys):
    from repro.cli import main

    assert main(["counters", "list", "--workload", "fmm", "--providers", "fmm"]) == 0
    out = capsys.readouterr().out
    assert "/fmm/p2p-subgrids" in out
    assert "/fmm/multipole-evals" in out
    assert "/threads" not in out  # filtered to the fmm provider


def test_counters_query_streams_fmm_variant_counters(capsys):
    """The acceptance demo: per-variant values via repro counters query."""
    from repro.cli import main

    code = main(
        [
            "counters",
            "query",
            *VARIANT_COUNTERS,
            "--benchmark",
            "fmm",
            "--platform",
            "hybrid-4p8e",
            "--cores",
            "12",
            "--format",
            "jsonl",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    import json

    rows = [json.loads(line) for line in out.strip().splitlines()]
    by_name = {row["name"]: row["value"] for row in rows}
    assert by_name["/fmm{locality#0/total}/p2p-subgrids@vectorized"] == 16.0
    assert by_name["/fmm{locality#0/total}/p2p-subgrids@scalar"] == 32.0


@pytest.mark.parametrize("runtime", ["hpx", "std"])
def test_fmm_is_deterministic(runtime):
    session = Session(runtime=runtime, cores=4)
    spec = WorkloadSpec.parse("fmm:subgrids=12")
    a = session.run(spec)
    b = session.run(spec)
    assert a.exec_time_ns == b.exec_time_ns
    assert a.counters == b.counters
