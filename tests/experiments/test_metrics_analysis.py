"""Metric extractors and scaling analysis."""

import pytest

from repro.api import Session, WorkloadSpec
from repro.experiments import metrics
from repro.experiments.analysis import analyze, karp_flatt, knee, parallel_efficiency
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import ScalingCurve, ScalingPoint, run_strong_scaling


@pytest.fixture(scope="module")
def fib_run():
    return Session(runtime="hpx", cores=2).run(WorkloadSpec.parse("fib"), params={"n": 13})


def test_task_duration_and_overhead(fib_run):
    duration = metrics.task_duration_us(fib_run)
    overhead = metrics.task_overhead_us(fib_run)
    assert 0.5 < duration < 5
    assert 0.3 < overhead < 2


def test_per_core_metrics(fib_run):
    task_time = metrics.task_time_per_core_ms(fib_run, 2)
    sched = metrics.scheduling_overhead_per_core_ms(fib_run, 2)
    assert task_time > 0 and sched > 0
    # exec time >= per-core task time (the Figs 8-12 relationship).
    assert fib_run.exec_time_ns / 1e6 >= task_time * 0.95


def test_overhead_fraction(fib_run):
    frac = metrics.overhead_fraction(fib_run)
    assert 0.2 < frac < 1.5  # very fine: overhead comparable to work


def test_idle_fraction(fib_run):
    assert 0.0 <= metrics.idle_fraction(fib_run) <= 1.0


def test_bandwidth(fib_run):
    assert metrics.bandwidth_gbs(fib_run) > 0


def test_metrics_validation(fib_run):
    bare = Session(runtime="std", cores=2).run(WorkloadSpec.parse("fib"), params={"n": 10}, collect_counters=False)
    with pytest.raises(ValueError, match="counters"):
        metrics.task_duration_us(bare)
    with pytest.raises(ValueError, match="cores"):
        metrics.task_time_per_core_ms(fib_run, 0)


def make_curve(times: dict[int, float | None]) -> ScalingCurve:
    return ScalingCurve(
        benchmark="x",
        runtime="hpx",
        points=[
            ScalingPoint(cores=c, aborted=t is None, median_exec_ns=t or 0.0)
            for c, t in times.items()
        ],
    )


def test_parallel_efficiency():
    curve = make_curve({1: 100.0, 2: 55.0, 4: 30.0})
    assert parallel_efficiency(curve, 2) == pytest.approx(100 / 55 / 2)
    assert parallel_efficiency(curve, 4) == pytest.approx(100 / 30 / 4)


def test_karp_flatt_ideal_is_zero():
    curve = make_curve({1: 100.0, 2: 50.0, 4: 25.0})
    assert karp_flatt(curve, 4) == pytest.approx(0.0, abs=1e-9)


def test_karp_flatt_serial_fraction_recovered():
    # Amdahl with f=0.2: S(p) = 1 / (0.2 + 0.8/p)
    curve = make_curve({1: 100.0, 4: 100 * (0.2 + 0.8 / 4)})
    assert karp_flatt(curve, 4) == pytest.approx(0.2)


def test_karp_flatt_validation():
    curve = make_curve({1: 100.0, 2: 50.0})
    with pytest.raises(ValueError):
        karp_flatt(curve, 1)


def test_knee_detection():
    curve = make_curve({1: 100.0, 2: 50.0, 10: 12.0, 20: 12.1})
    assert knee(curve) == 10
    flat = make_curve({1: 100.0, 2: 99.0})
    assert knee(flat) == 1


def test_analyze_real_curve():
    config = ExperimentConfig(samples=1, core_counts=(1, 2, 4))
    curve = run_strong_scaling("fib", "hpx", params={"n": 12}, config=config)
    analysis = analyze(curve)
    assert analysis.benchmark == "fib"
    assert analysis.max_speedup > 2
    assert analysis.max_speedup_cores == 4
    assert 0 < analysis.efficiency_at_max <= 1.1
    assert analysis.serial_fraction is not None
    assert analysis.knee_cores == 4


def test_analyze_all_aborted():
    curve = make_curve({1: None, 2: None})
    analysis = analyze(curve)
    assert analysis.max_speedup == 0.0
    assert analysis.knee_cores is None
