"""Table and figure generators (small configurations)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    BANDWIDTH_FIGURES,
    EXEC_TIME_FIGURES,
    OVERHEAD_FIGURES,
    bandwidth_figure,
    execution_time_figure,
    overhead_figure,
)
from repro.experiments.report import (
    render_bandwidth_figure,
    render_execution_time_figure,
    render_overhead_figure,
    render_table,
    render_table1,
    render_table5,
)
from repro.experiments.tables import classify_granularity, table1, table5

TINY = ExperimentConfig(samples=1, core_counts=(1, 2))


def test_figure_maps_cover_the_paper():
    assert len(EXEC_TIME_FIGURES) == 7  # Figs 1-7
    assert len(OVERHEAD_FIGURES) == 5  # Figs 8-12
    assert len(BANDWIDTH_FIGURES) == 2  # Figs 13-14
    assert EXEC_TIME_FIGURES["fig2"] == "pyramids"
    assert OVERHEAD_FIGURES["fig12"] == "uts"
    assert BANDWIDTH_FIGURES["fig13"] == "alignment"


def test_classify_granularity_bands():
    assert classify_granularity(2748) == "coarse"
    assert classify_granularity(988) == "coarse"
    assert classify_granularity(246) == "moderate"
    assert classify_granularity(107) == "fine"
    assert classify_granularity(52.1) == "fine"
    assert classify_granularity(28.1) == "fine"
    assert classify_granularity(4.6) == "very fine"
    assert classify_granularity(1.02) == "very fine"


def test_execution_time_figure_small():
    fig = execution_time_figure("fig3", config=TINY, params={"n": 64, "cutoff": 16})
    rows = fig.rows()
    assert [r[0] for r in rows] == [1, 2]
    assert all(r[1] is not None for r in rows)  # hpx completed
    text = render_execution_time_figure(fig)
    assert "strassen" in text and "cores" in text


def test_execution_time_figure_unknown():
    with pytest.raises(KeyError, match="fig1"):
        execution_time_figure("fig99", config=TINY)


def test_overhead_figure_small():
    fig = overhead_figure("fig8", config=TINY, params={"nseq": 5, "seqlen": 60})
    assert fig.cores == [1, 2]
    # On one core the ideal equals the measured by construction.
    assert fig.ideal_scaling_ms[0] == pytest.approx(fig.exec_time_ms[0])
    assert fig.ideal_task_time_ms[0] == pytest.approx(fig.task_time_per_core_ms[0])
    assert all(v > 0 for v in fig.sched_overhead_per_core_ms)
    render_overhead_figure(fig)


def test_bandwidth_figure_small():
    fig = bandwidth_figure(
        "fig14", config=TINY, params={"width": 2048, "steps": 16, "chunk": 8, "block": 512}
    )
    assert fig.cores == [1, 2]
    assert all(b > 0 for b in fig.bandwidth_gbs)
    assert fig.bandwidth_gbs[1] > fig.bandwidth_gbs[0]  # more cores, more BW
    render_bandwidth_figure(fig)


def test_table5_row_fields():
    rows = table5(
        benchmarks=["fib"],
        core_counts=(1, 2),
        samples=1,
        params={"fib": {"n": 12}},
    )
    (row,) = rows
    assert row.benchmark == "fib"
    assert row.structure == "recursive-balanced"
    assert row.granularity == "very fine"
    assert row.paper_scaling_std == "fail"
    text = render_table5(rows)
    assert "fib" in text and "very fine" in text


def test_table1_small():
    rows = table1(benchmarks=["strassen"], cores=4)
    (row,) = rows
    assert row.benchmark == "strassen"
    assert row.baseline_ms is not None
    assert row.tau.outcome.value in ("SegV", "Abort", "timeout", "completed")
    text = render_table1(rows)
    assert "strassen" in text and "TAU" in text


def test_render_table_generic():
    text = render_table(["a", "b"], [[1, 2.5], ["x", None]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "2.50" in text and "-" in text
