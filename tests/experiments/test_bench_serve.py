"""The serve load harness: job list, percentiles, baseline gate.

The network-driving path itself is exercised by the CI serve-load-smoke
job (and ``tests/serve/test_spawned.py`` covers the spawn plumbing);
here we pin down the pure parts the gate's correctness rests on.
"""

from __future__ import annotations

import math

from repro.experiments.bench_serve import (
    HOT_WORKLOADS,
    MODES,
    build_jobs,
    compare_to_baseline,
    is_bench_serve_payload,
    percentile,
)


def _payload(**overrides):
    base = {
        "kind": "repro-bench-serve",
        "runs": 500,
        "completed": 500,
        "failed": 0,
        "p99_over_ideal": 1.0,
        "wall_over_ideal": 1.1,
    }
    base.update(overrides)
    return base


# -- the job list ------------------------------------------------------------


def test_build_jobs_is_deterministic_with_a_hot_set():
    jobs = build_jobs(500)
    assert jobs == build_jobs(500)
    assert len(jobs) == 500
    hot = [j for j in jobs if j["seed"] < 100_000]
    assert len(hot) == 100  # 20% drawn from the hot set
    assert len({(j["seed"], j["cores"], j["params"]["n"]) for j in hot}) == HOT_WORKLOADS
    cold = [j for j in jobs if j["seed"] >= 100_000]
    assert len({j["seed"] for j in cold}) == len(cold)  # unique -> real executions


def test_quick_mode_meets_the_smoke_floor():
    assert MODES["quick"]["clients"] >= 50
    assert MODES["quick"]["runs"] >= 500


# -- percentiles -------------------------------------------------------------


def test_percentile_nearest_rank():
    values = list(range(1, 101))
    assert percentile(values, 0.50) == 50
    assert percentile(values, 0.99) == 99
    assert percentile(values, 1.0) == 100
    assert percentile([7.0], 0.99) == 7.0
    assert math.isnan(percentile([], 0.5))


# -- the baseline gate -------------------------------------------------------


def test_gate_passes_within_threshold():
    baseline = _payload()
    current = _payload(p99_over_ideal=2.5, wall_over_ideal=2.0)
    assert compare_to_baseline(current, baseline, threshold=3.0) == []


def test_gate_fails_on_latency_ratio_regression():
    failures = compare_to_baseline(_payload(p99_over_ideal=3.5), _payload(), threshold=3.0)
    assert [f.metric for f in failures] == ["p99_over_ideal"]
    assert "3.500" in str(failures[0])


def test_gate_fails_on_incomplete_or_failed_runs():
    failures = compare_to_baseline(_payload(completed=499, failed=1), _payload())
    assert {f.metric for f in failures} == {"completed-runs", "failed-runs"}


def test_gate_ignores_missing_ratio_metrics():
    assert compare_to_baseline(_payload(), {"kind": "repro-bench-serve"}) == []


def test_payload_sniffing():
    assert is_bench_serve_payload(_payload())
    assert not is_bench_serve_payload({"kind": "repro-bench-core"})
    assert not is_bench_serve_payload(None)
