"""Strong-scaling harness: medians, labels, abort handling."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import ScalingCurve, ScalingPoint, run_strong_scaling

SMALL_FIB = {"n": 12}


@pytest.fixture(scope="module")
def fib_curve():
    config = ExperimentConfig(samples=2, core_counts=(1, 2, 4))
    return run_strong_scaling("fib", "hpx", params=SMALL_FIB, config=config)


def test_points_cover_core_counts(fib_curve):
    assert [p.cores for p in fib_curve.points] == [1, 2, 4]


def test_median_of_samples(fib_curve):
    point = fib_curve.points[0]
    assert len(point.exec_samples) == 2
    lo, hi = sorted(point.exec_samples)
    assert lo <= point.median_exec_ns <= hi


def test_counters_aggregated(fib_curve):
    point = fib_curve.points[0]
    assert "/threads{locality#0/total}/time/average" in point.counters


def test_speedup(fib_curve):
    assert fib_curve.speedup(1) == pytest.approx(1.0)
    assert fib_curve.speedup(4) > 2.5


def test_point_lookup(fib_curve):
    assert fib_curve.point(2).cores == 2
    with pytest.raises(KeyError):
        fib_curve.point(16)


def test_scales_to_label(fib_curve):
    assert fib_curve.scales_to() == "to 4"


def test_scales_to_fail_label():
    config = ExperimentConfig(samples=1, core_counts=(1, 2))
    curve = run_strong_scaling("fib", "std", params={"n": 19}, config=config)
    assert any(p.aborted for p in curve.points)
    assert curve.scales_to() == "fail"
    assert curve.baseline_ns is None or curve.speedup(2) is None


def test_scales_to_no_scaling():
    curve = ScalingCurve(
        benchmark="x",
        runtime="hpx",
        points=[
            ScalingPoint(cores=1, aborted=False, median_exec_ns=100),
            ScalingPoint(cores=2, aborted=False, median_exec_ns=101),
            ScalingPoint(cores=4, aborted=False, median_exec_ns=99.5),
        ],
    )
    assert curve.scales_to() == "no scaling"


def test_std_curve_collects_counters_too():
    """Counters read the probe bus, so std curves carry them as well."""
    config = ExperimentConfig(samples=1, core_counts=(1,))
    curve = run_strong_scaling("fib", "std", params=SMALL_FIB, config=config)
    counters = curve.points[0].counters
    assert counters["/threads{locality#0/total}/count/cumulative"] > 0
    assert "/threads{locality#0/total}/time/average" in counters


def test_collect_counters_false():
    config = ExperimentConfig(samples=1, core_counts=(1,))
    curve = run_strong_scaling(
        "fib", "hpx", params=SMALL_FIB, config=config, collect_counters=False
    )
    assert curve.points[0].counters == {}


def test_runner_periodic_query_samples():
    from repro.api import Session, WorkloadSpec
    from repro.simcore.clock import us

    result = Session(runtime="hpx", cores=2).run(
        WorkloadSpec.parse("fib"),
        params={"n": 13},
        query_interval_ns=us(100),
    )
    assert result.verified
    assert len(result.query_samples) >= 2
    counts = [rows[4].value for rows in result.query_samples]
    assert counts == sorted(counts)  # cumulative counter grows


def test_runner_query_requires_counters():
    from repro.api import Session, WorkloadSpec

    with pytest.raises(ValueError, match="collect_counters"):
        Session(runtime="hpx").run(
            WorkloadSpec.parse("fib"),
            params={"n": 8},
            collect_counters=False,
            query_interval_ns=1000,
        )
