"""The regenerate-everything driver (tiny configuration)."""

import pytest

from repro.experiments import generate


@pytest.fixture(autouse=True)
def _tiny_grids(monkeypatch):
    """Shrink the grids so the full generation runs in seconds."""
    monkeypatch.setattr(generate, "FIGURE_CORES", (1, 2))
    monkeypatch.setattr(generate, "TABLE_CORES", (1, 2))


def test_generate_all_writes_every_experiment(tmp_path):
    results = generate.generate_all(tmp_path, samples=1, verbose=False)
    expected = {"table1", "table5"} | {f"fig{i}" for i in range(1, 15)}
    assert set(results) == expected
    for key in expected:
        path = tmp_path / f"{key}.txt"
        assert path.exists()
        assert path.read_text().strip()
    combined = (tmp_path / "all_results.txt").read_text()
    for key in expected:
        assert f"===== {key} =====" in combined


def test_generate_main(tmp_path, capsys):
    assert generate.main([str(tmp_path), "--samples", "1"]) == 0
    assert (tmp_path / "table5.txt").exists()
