"""Event-core benchmark: determinism contract and regression gate."""

from __future__ import annotations

from repro.experiments.bench_core import (
    SCHEMA,
    _record_stream,
    _replay_stream,
    _run_once,
    _same_results,
    compare_to_baseline,
    is_bench_core_payload,
)
from repro.simcore.events import Engine
from repro.simcore.events_legacy import LegacyEngine


def test_fib20_identical_artifacts_on_both_engines():
    """The acceptance determinism check at CI size: fib(20) must produce
    bit-identical simulated results (timestamps, counter values, task
    counts) on the fast-path engine and the legacy heap engine."""
    params = {"n": 20}
    _, new = _run_once("fib", "hpx", 8, params, Engine)
    _, legacy = _run_once("fib", "hpx", 8, params, LegacyEngine)
    assert new.verified and legacy.verified
    assert new.exec_time_ns == legacy.exec_time_ns
    assert new.engine_events == legacy.engine_events
    assert new.counters == legacy.counters
    assert new.tasks_executed == legacy.tasks_executed
    assert _same_results(new, legacy)


def test_recorded_stream_replays_identically_on_both_engines():
    """The bench's replay harness reproduces the recorded run's final
    clock and event count on both engines (the property the events/sec
    comparison rests on)."""
    groups, delays, recorded = _record_stream("fib", "hpx", 4, {"n": 12})
    assert recorded.verified
    for factory in (Engine, LegacyEngine):
        _, now, events = _replay_stream(groups, delays, factory)
        assert (now, events) == (recorded.exec_time_ns, recorded.engine_events)


def _payload(core_speedups: dict[str, float], run_speedups: dict[str, float]) -> dict:
    return {
        "schema": SCHEMA,
        "mode": "quick",
        "core": [
            {"pattern": name, "speedup": value} for name, value in core_speedups.items()
        ],
        "runs": [
            {"name": name, "core_speedup": value} for name, value in run_speedups.items()
        ],
    }


def test_gate_passes_within_threshold():
    baseline = _payload({"chain": 2.0}, {"fib": 2.1})
    current = _payload({"chain": 1.7}, {"fib": 2.0})  # −15%, −5%
    assert compare_to_baseline(current, baseline, threshold=0.20) == []


def test_gate_catches_core_regression():
    baseline = _payload({"chain": 2.0, "fanout": 5.0}, {"fib": 2.1})
    current = _payload({"chain": 2.0, "fanout": 3.0}, {"fib": 2.1})  # fanout −40%
    failures = compare_to_baseline(current, baseline, threshold=0.20)
    assert [f.metric for f in failures] == ["core/fanout"]
    assert failures[0].baseline == 5.0
    assert failures[0].current == 3.0
    assert "fanout" in str(failures[0])


def test_gate_catches_reference_run_regression():
    baseline = _payload({}, {"fib": 2.1, "uts": 2.1})
    current = _payload({}, {"fib": 1.2, "uts": 2.0})
    failures = compare_to_baseline(current, baseline, threshold=0.20)
    assert [f.metric for f in failures] == ["runs/fib"]


def test_gate_ignores_metrics_missing_from_baseline():
    baseline = _payload({"chain": 2.0}, {})
    current = _payload({"chain": 2.0, "fanout": 1.0}, {"fib": 0.5})
    assert compare_to_baseline(current, baseline, threshold=0.20) == []


def test_is_bench_core_payload():
    assert is_bench_core_payload({"schema": SCHEMA})
    assert not is_bench_core_payload({"schema": "repro-campaign/1"})
    assert not is_bench_core_payload(["schema"])
    assert not is_bench_core_payload(None)
