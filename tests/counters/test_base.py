"""Counter base types: reset semantics, instrumentation life cycle."""

import pytest

from repro.counters.base import (
    AverageRatioCounter,
    CounterEnvironment,
    CounterInfo,
    ElapsedTimeCounter,
    MonotonicCounter,
    RawCounter,
)
from repro.counters.names import parse_counter_name
from repro.counters.types import CounterStatus, CounterType
from repro.simcore.events import Engine


def make_env():
    return CounterEnvironment(engine=Engine())


def info(ctype=CounterType.RAW, instrument=0):
    return CounterInfo(
        type_name="/test/counter",
        counter_type=ctype,
        help_text="test",
        instrument_ns_per_task=instrument,
    )


NAME = parse_counter_name("/test{locality#0/total}/counter")


def test_raw_counter_reads_source():
    source = {"v": 10.0}
    c = RawCounter(NAME, info(), make_env(), lambda: source["v"])
    assert c.read() == 10.0
    source["v"] = 20.0
    assert c.read() == 20.0


def test_raw_counter_reset_is_noop():
    source = {"v": 10.0}
    c = RawCounter(NAME, info(), make_env(), lambda: source["v"])
    c.reset()
    assert c.read() == 10.0


def test_monotonic_baseline_reset():
    source = {"v": 100.0}
    c = MonotonicCounter(NAME, info(), make_env(), lambda: source["v"])
    assert c.read() == 100.0
    c.reset()
    assert c.read() == 0.0
    source["v"] = 130.0
    assert c.read() == 30.0


def test_average_ratio():
    state = {"num": 1000.0, "den": 10.0}
    c = AverageRatioCounter(NAME, info(), make_env(), lambda: state["num"], lambda: state["den"])
    assert c.read() == 100.0
    c.reset()
    state["num"] = 1600.0
    state["den"] = 13.0
    assert c.read() == pytest.approx(200.0)  # delta 600 / delta 3


def test_average_ratio_zero_denominator():
    c = AverageRatioCounter(NAME, info(), make_env(), lambda: 5.0, lambda: 0.0)
    assert c.read() == 0.0


def test_elapsed_time():
    env = make_env()
    c = ElapsedTimeCounter(NAME, info(CounterType.ELAPSED_TIME), env)
    env.engine.schedule(500, lambda: None)
    env.engine.run()
    assert c.read() == 500.0
    c.reset()
    assert c.read() == 0.0
    env.engine.schedule(100, lambda: None)
    env.engine.run()
    assert c.read() == 100.0


def test_get_counter_value_fields():
    env = make_env()
    c = RawCounter(NAME, info(), env, lambda: 7.0)
    v1 = c.get_counter_value()
    v2 = c.get_counter_value()
    assert v1.value == 7.0
    assert v1.count == 1
    assert v2.count == 2
    assert v1.status is CounterStatus.VALID_DATA
    assert v1.name == str(NAME)
    assert v1.time == env.engine.now


def test_get_counter_value_with_reset():
    source = {"v": 50.0}
    c = MonotonicCounter(NAME, info(), make_env(), lambda: source["v"])
    v = c.get_counter_value(reset=True)
    assert v.value == 50.0
    assert c.read() == 0.0


class _FakeRuntime:
    def __init__(self):
        self.instrument_ns = 0

    def add_instrumentation(self, delta):
        self.instrument_ns += delta


def test_start_stop_registers_instrumentation():
    runtime = _FakeRuntime()
    env = CounterEnvironment(engine=Engine(), runtime=runtime)
    c = RawCounter(NAME, info(instrument=40), env, lambda: 0.0)
    c.start()
    assert runtime.instrument_ns == 40
    c.start()  # idempotent
    assert runtime.instrument_ns == 40
    c.stop()
    assert runtime.instrument_ns == 0
    c.stop()  # idempotent
    assert runtime.instrument_ns == 0


def test_start_without_runtime_is_safe():
    c = RawCounter(NAME, info(instrument=40), make_env(), lambda: 0.0)
    c.start()
    c.stop()


def test_env_require():
    env = make_env()
    assert env.require("engine") is env.engine
    with pytest.raises(RuntimeError, match="runtime"):
        env.require("runtime")
