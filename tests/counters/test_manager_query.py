"""Active-counter manager and periodic queries."""

import pytest

from repro.counters.manager import ActiveCounters, format_counter_values
from repro.counters.query import PeriodicQuery
from repro.simcore.clock import us

from tests.conftest import fib_body


def test_active_counters_create(registry):
    ac = ActiveCounters(registry, ["/threads/time/average", "/runtime/uptime"])
    assert len(ac) == 2
    assert ac.names() == [
        "/threads{locality#0/total}/time/average",
        "/runtime{locality#0/total}/uptime",
    ]


def test_evaluate_returns_values(registry):
    ac = ActiveCounters(registry, ["/threads/count/cumulative"])
    values = ac.evaluate_active_counters()
    assert len(values) == 1
    assert values[0].value == 0.0


def test_evaluate_with_description(registry):
    ac = ActiveCounters(registry, ["/runtime/uptime"])
    values = ac.evaluate_active_counters(description="sample-3")
    assert "[sample-3]" in values[0].name


def test_evaluate_reset_protocol(registry, hpx4):
    """The paper's per-sample protocol: evaluate+reset between samples."""
    ac = ActiveCounters(registry, ["/threads/count/cumulative"])
    hpx4.run_to_completion(fib_body, 8)
    first = ac.evaluate_active_counters(reset=True)[0].value
    assert first == hpx4.stats.tasks_executed
    # After the reset the counter reads zero until more tasks run.
    assert ac.evaluate_active_counters()[0].value == 0.0


def test_reset_active_counters(registry, hpx4):
    ac = ActiveCounters(registry, ["/threads/count/cumulative"])
    hpx4.run_to_completion(fib_body, 8)
    ac.reset_active_counters()
    assert ac.evaluate_dict()["/threads{locality#0/total}/count/cumulative"] == 0.0


def test_start_stop_instrumentation(registry, hpx4):
    ac = ActiveCounters(registry, ["/threads/time/average"])
    assert hpx4.instrument_ns == 0
    ac.start()
    assert hpx4.instrument_ns > 0
    ac.stop()
    assert hpx4.instrument_ns == 0


def test_start_idempotent(registry, hpx4):
    ac = ActiveCounters(registry, ["/threads/time/average"])
    ac.start()
    level = hpx4.instrument_ns
    ac.start()
    assert hpx4.instrument_ns == level


def test_format_counter_values(registry):
    ac = ActiveCounters(registry, ["/threads/count/cumulative"])
    text = format_counter_values(ac.evaluate_active_counters())
    assert text == "/threads{locality#0/total}/count/cumulative,1,0,0"


def test_periodic_query_out_of_band(registry, hpx4, engine):
    query = PeriodicQuery(
        ActiveCounters(registry, ["/threads/count/cumulative"]),
        engine=engine,
        runtime=hpx4,
        interval_ns=us(20),
        in_band=False,
    )
    query.start()
    hpx4.run_to_completion(fib_body, 12)
    assert len(query.samples) > 2
    # Samples are cumulative and non-decreasing.
    values = [s[0].value for s in query.samples]
    assert values == sorted(values)


def test_periodic_query_in_band_perturbs(registry, hpx4, engine):
    """In-band querying consumes scheduler time (the counter-overhead
    effect of Section V-C)."""
    from repro.runtime.scheduler import HpxRuntime
    from repro.simcore.events import Engine
    from repro.simcore.machine import Machine

    baseline_engine = Engine()
    baseline = HpxRuntime(baseline_engine, Machine(), num_workers=1)
    baseline.run_to_completion(fib_body, 10)

    query = PeriodicQuery(
        ActiveCounters(registry, ["/threads/count/cumulative"]),
        engine=engine,
        runtime=hpx4,
        interval_ns=us(50),
        in_band=True,
    )
    query.start()
    hpx4.run_to_completion(fib_body, 10)
    assert query.samples  # queries actually ran as tasks


def test_periodic_query_stops_at_quiescence(registry, hpx4, engine):
    query = PeriodicQuery(
        ActiveCounters(registry, ["/runtime/uptime"]),
        engine=engine,
        runtime=hpx4,
        interval_ns=us(100),
        in_band=False,
    )
    query.start()
    hpx4.run_to_completion(fib_body, 9)
    engine.run()  # drain any remaining query ticks
    assert not query._running
    assert engine.pending_events == 0


def test_periodic_query_validation(registry, hpx4, engine):
    ac = ActiveCounters(registry, ["/runtime/uptime"])
    with pytest.raises(ValueError, match="interval"):
        PeriodicQuery(ac, engine=engine, runtime=hpx4, interval_ns=0)
    with pytest.raises(ValueError, match="runtime"):
        PeriodicQuery(ac, engine=engine, runtime=None, interval_ns=10, in_band=True)


def test_periodic_query_stop_is_idempotent(registry, hpx4, engine):
    """Regression: double stop (explicit stop racing the self-stop at
    quiescence) must not unregister counter instrumentation twice."""
    query = PeriodicQuery(
        ActiveCounters(registry, ["/threads/time/average"]),
        engine=engine,
        runtime=hpx4,
        interval_ns=us(10),
        in_band=False,
    )
    query.stop()  # stop before start: no-op
    assert hpx4.instrument_ns == 0
    query.start()
    assert hpx4.instrument_ns > 0
    query.stop()
    query.stop()
    assert hpx4.instrument_ns == 0


def test_periodic_query_stop_cancels_armed_tick(registry, hpx4, engine):
    """Regression: stop() must cancel the armed tick so the event queue
    drains instead of firing a stray sample."""
    query = PeriodicQuery(
        ActiveCounters(registry, ["/runtime/uptime"]),
        engine=engine,
        runtime=hpx4,
        interval_ns=us(10),
        in_band=False,
    )
    query.start()
    assert engine.pending_events == 1  # the armed tick
    query.stop()
    assert engine.pending_events == 0
    engine.run()
    assert query.samples == []


def test_periodic_query_stale_tick_dropped_after_stop(registry, hpx4, engine):
    """Regression for the stop race: a tick armed before stop() that
    still fires (e.g. it was already dispatched) must not record a
    sample or re-arm the chain."""
    query = PeriodicQuery(
        ActiveCounters(registry, ["/runtime/uptime"]),
        engine=engine,
        runtime=hpx4,
        interval_ns=us(10),
        in_band=False,
    )
    query.start()
    stale_epoch = query._epoch
    query.stop()
    query._tick(stale_epoch)  # the raced tick arriving late
    assert query.samples == []
    assert engine.pending_events == 0  # no re-armed chain


def test_periodic_query_stop_start_cycle_drops_old_epoch(registry, hpx4, engine):
    """A stop/start cycle bumps the sampling epoch: a tick from the old
    epoch is discarded even though the query is running again."""
    query = PeriodicQuery(
        ActiveCounters(registry, ["/runtime/uptime"]),
        engine=engine,
        runtime=hpx4,
        interval_ns=us(10),
        in_band=False,
    )
    query.start()
    old_epoch = query._epoch
    query.stop()
    query.start()
    assert query._epoch == old_epoch + 1
    query._tick(old_epoch)  # stale tick from the first chain
    assert query.samples == []  # dropped, not recorded
    assert query._running  # the new chain is unaffected
    query.stop()


def test_periodic_query_stop_while_in_band_query_in_flight(registry, hpx4, engine):
    """Regression for the ISSUE stop race: stop() lands between an
    in-band query task's submission and its completion.  The stale task
    must drop its sample and not re-arm, and the engine must drain."""
    query = PeriodicQuery(
        ActiveCounters(registry, ["/threads/count/cumulative"]),
        engine=engine,
        runtime=hpx4,
        interval_ns=us(10),
        in_band=True,
    )
    # Keep the app alive past the first tick so the tick submits a task.
    hpx4.submit(fib_body, 6)
    query.start()
    engine.run(until=us(10))  # the tick fires and submits the query task
    assert query.samples == []  # task not yet complete
    query.stop()  # races the in-flight query task
    engine.run()  # drain: the task completes against a stale epoch
    assert query.samples == []
    assert not query._running
    assert engine.pending_events == 0
    assert hpx4.instrument_ns == 0


def test_periodic_query_sink(registry, hpx4, engine):
    seen = []
    query = PeriodicQuery(
        ActiveCounters(registry, ["/runtime/uptime"]),
        engine=engine,
        runtime=hpx4,
        interval_ns=us(30),
        in_band=False,
        sink=seen.append,
    )
    query.start()
    hpx4.run_to_completion(fib_body, 12)
    assert seen == query.samples


def test_periodic_query_rejects_non_callable_sink(registry, hpx4, engine):
    """Satellite fix: a bad sink fails at construction, not mid-run."""
    ac = ActiveCounters(registry, ["/runtime/uptime"])
    with pytest.raises(TypeError, match="callable"):
        PeriodicQuery(ac, engine=engine, runtime=hpx4, interval_ns=us(10), sink=42)


def test_periodic_query_rejects_wrong_arity_sink(registry, hpx4, engine):
    ac = ActiveCounters(registry, ["/runtime/uptime"])

    def two_arg_sink(values, extra):
        pass

    with pytest.raises(TypeError, match="one positional argument"):
        PeriodicQuery(ac, engine=engine, runtime=hpx4, interval_ns=us(10), sink=two_arg_sink)

    def no_arg_sink():
        pass

    with pytest.raises(TypeError, match="one positional argument"):
        PeriodicQuery(ac, engine=engine, runtime=hpx4, interval_ns=us(10), sink=no_arg_sink)


def test_periodic_query_rejects_wrong_first_argument(registry, hpx4, engine):
    with pytest.raises(TypeError, match="ActiveCounters.*TelemetryPipeline"):
        PeriodicQuery(["/runtime/uptime"], engine=engine, runtime=hpx4, interval_ns=us(10))


def test_query_cost_comes_from_platform_spec(registry, engine):
    """The per-counter in-band query cost is platform-derived."""
    from repro.platform.presets import get_platform
    from repro.platform.spec import DEFAULT_COUNTER_QUERY_COST_NS
    from repro.runtime.scheduler import HpxRuntime
    from repro.simcore.events import Engine
    from repro.simcore.machine import Machine

    spec = get_platform("desktop-1x8")
    assert spec.counter_query_cost_ns != DEFAULT_COUNTER_QUERY_COST_NS
    fast_engine = Engine()
    fast_rt = HpxRuntime(fast_engine, Machine(spec), num_workers=2)
    ac = ActiveCounters(registry, ["/runtime/uptime"])
    query = PeriodicQuery(ac, engine=fast_engine, runtime=fast_rt, interval_ns=us(10))
    assert query.cost_per_counter_ns == spec.counter_query_cost_ns
    # An explicit override still wins.
    query = PeriodicQuery(
        ac, engine=fast_engine, runtime=fast_rt, interval_ns=us(10), cost_per_counter_ns=123
    )
    assert query.cost_per_counter_ns == 123


def test_query_cost_defaults_on_reference_node(registry, hpx4, engine):
    """ivybridge-2x10 (the paper's node) keeps the historical constant."""
    from repro.counters.query import QUERY_COST_PER_COUNTER_NS

    ac = ActiveCounters(registry, ["/runtime/uptime"])
    query = PeriodicQuery(ac, engine=engine, runtime=hpx4, interval_ns=us(10))
    assert query.cost_per_counter_ns == QUERY_COST_PER_COUNTER_NS == 800


def test_periodic_query_drives_pipeline(registry, hpx4, engine):
    """A pipeline as the query target: samples land in frame + sinks."""
    from repro.telemetry.frame import TelemetryFrame
    from repro.telemetry.pipeline import TelemetryPipeline

    sink = TelemetryFrame()
    pipe = TelemetryPipeline(registry, ["/threads/count/cumulative"], sinks=(sink,))
    query = PeriodicQuery(pipe, engine=engine, runtime=hpx4, interval_ns=us(20), in_band=False)
    query.start()
    hpx4.run_to_completion(fib_body, 12)
    assert len(query.samples) > 1
    assert len(pipe.frame) == len(query.samples)  # one counter per sample
    assert len(sink) == len(pipe.frame)
    # The recorded values are the same objects the query collected.
    assert [s.value for s in pipe.frame] == [v[0].value for v in query.samples]
