"""Counter-name grammar."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.counters.names import (
    CounterName,
    CounterNameError,
    format_counter_name,
    parse_counter_name,
)


def test_full_name():
    name = parse_counter_name("/threads{locality#0/total}/time/average")
    assert name.object_name == "threads"
    assert name.counter_name == "time/average"
    assert name.parent_instance == "locality"
    assert name.parent_index == 0
    assert name.instance_name == "total"
    assert name.instance_index is None
    assert not name.has_wildcard


def test_worker_instance():
    name = parse_counter_name("/threads{locality#0/worker-thread#3}/count/cumulative")
    assert name.instance_name == "worker-thread"
    assert name.instance_index == 3


def test_default_instance():
    name = parse_counter_name("/threads/idle-rate")
    assert name.instance_name == "total"
    assert name.parent_index == 0


def test_wildcard_instance_index():
    name = parse_counter_name("/threads{locality#0/worker-thread#*}/time/average")
    assert name.instance_is_wildcard
    assert name.has_wildcard


def test_wildcard_parent_index():
    name = parse_counter_name("/threads{locality#*/total}/time/average")
    assert name.parent_index is None
    assert name.has_wildcard


def test_parameters():
    name = parse_counter_name(
        "/arithmetics/add@/threads{locality#0/total}/time/average,/runtime/uptime"
    )
    assert name.object_name == "arithmetics"
    assert name.counter_name == "add"
    assert name.parameters == "/threads{locality#0/total}/time/average,/runtime/uptime"


def test_papi_colon_names():
    name = parse_counter_name("/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD")
    assert name.object_name == "papi"
    assert name.counter_name == "OFFCORE_REQUESTS:ALL_DATA_RD"


def test_statistics_embedded_instance():
    name = parse_counter_name(
        "/statistics{/threads{locality#0/total}/time/average}/rolling_average@5"
    )
    assert name.object_name == "statistics"
    assert name.embedded_instance == "/threads{locality#0/total}/time/average"
    assert name.counter_name == "rolling_average"
    assert name.parameters == "5"


def test_format_round_trip():
    for text in (
        "/threads{locality#0/total}/time/average",
        "/threads{locality#0/worker-thread#7}/count/cumulative",
        "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_RFO",
        "/runtime{locality#0/total}/uptime",
        "/statistics{/threads{locality#0/total}/time/average}/max@3",
    ):
        assert format_counter_name(parse_counter_name(text)) == text


def test_str_is_canonical():
    name = parse_counter_name("/threads/idle-rate")
    assert str(name) == "/threads{locality#0/total}/idle-rate"


def test_type_name():
    name = parse_counter_name("/threads{locality#0/worker-thread#1}/time/average")
    assert name.type_name == "/threads/time/average"


def test_with_instance():
    name = parse_counter_name("/threads{locality#0/worker-thread#*}/time/average")
    concrete = name.with_instance("worker-thread", 5)
    assert not concrete.has_wildcard
    assert concrete.instance_index == 5


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "threads/time",
        "/",
        "/threads",
        "/threads{locality#0/total}",
        "/threads{unclosed/time/average",
        "/threads{locality}/time/average",
        "/threads{locality#x/total}/time/average",
        "/{locality#0/total}/time/average",
    ],
)
def test_malformed_rejected(bad):
    with pytest.raises(CounterNameError):
        parse_counter_name(bad)


_ident = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_\-]{0,10}", fullmatch=True)


@given(
    _ident,
    _ident,
    st.integers(min_value=0, max_value=99),
    _ident,
    st.one_of(st.none(), st.integers(min_value=0, max_value=99)),
)
def test_property_round_trip(obj, parent, pidx, inst, idx):
    name = CounterName(
        object_name=obj,
        counter_name="some/counter",
        parent_instance=parent,
        parent_index=pidx,
        instance_name=inst,
        instance_index=idx,
    )
    parsed = parse_counter_name(format_counter_name(name))
    assert parsed == name
