"""Statistics counters."""

import pytest

from repro.counters.aggregating import StatisticsCounter
from repro.counters.base import CounterEnvironment, CounterInfo, RawCounter
from repro.counters.names import parse_counter_name
from repro.counters.types import CounterType
from repro.simcore.events import Engine


def make(op, window=10, source=None):
    env = CounterEnvironment(engine=Engine())
    state = source if source is not None else {"v": 0.0}
    info = CounterInfo("/test/raw", CounterType.RAW, "t")
    underlying = RawCounter(parse_counter_name("/test/raw"), info, env, lambda: state["v"])
    stat_info = CounterInfo(f"/statistics/{op}", CounterType.AGGREGATING, "t")
    name = parse_counter_name(f"/statistics{{/test{{locality#0/total}}/raw}}/{op}")
    return StatisticsCounter(name, stat_info, env, underlying, op, window), state


def feed(counter, state, values):
    out = []
    for v in values:
        state["v"] = v
        out.append(counter.read())
    return out


def test_rolling_average():
    c, state = make("rolling_average", window=3)
    results = feed(c, state, [1, 2, 3, 4])
    assert results == [1.0, 1.5, 2.0, 3.0]  # window drops the oldest


def test_average_unbounded():
    c, state = make("average")
    results = feed(c, state, [1, 2, 3, 4])
    assert results == [1.0, 1.5, 2.0, 2.5]


def test_min_max():
    c, state = make("min", window=5)
    assert feed(c, state, [3, 1, 2]) == [3, 1, 1]
    c, state = make("max", window=5)
    assert feed(c, state, [3, 1, 5]) == [3, 3, 5]


def test_median():
    c, state = make("median", window=5)
    assert feed(c, state, [5, 1, 3]) == [5, 3.0, 3]
    assert feed(c, state, [9])[-1] == 4.0  # median of [5,1,3,9]


def test_stddev():
    c, state = make("stddev", window=5)
    results = feed(c, state, [2, 2, 2])
    assert results == [0.0, 0.0, 0.0]
    c, state = make("stddev", window=5)
    results = feed(c, state, [0, 4])
    assert results[-1] == pytest.approx(2.0)


def test_reset_clears_history():
    c, state = make("max", window=5)
    feed(c, state, [10])
    c.reset()
    assert feed(c, state, [1]) == [1]


def test_empty_reads_zero():
    c, _ = make("rolling_average")
    c._samples.clear()
    # read() always samples first, so never truly empty; verify sample path
    assert isinstance(c.read(), float)


def test_unsupported_op_rejected():
    with pytest.raises(ValueError, match="unsupported"):
        make("mode")


def test_bad_window_rejected():
    with pytest.raises(ValueError, match="window"):
        make("max", window=0)
