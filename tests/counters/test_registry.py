"""Counter registry: discovery and creation."""

import pytest

from repro.counters.names import CounterNameError


def test_types_registered(registry):
    names = [e.info.type_name for e in registry.counter_types()]
    assert "/threads/time/average" in names
    assert "/threads/time/average-overhead" in names
    assert "/threads/idle-rate" in names
    assert "/papi/OFFCORE_REQUESTS:ALL_DATA_RD" in names
    assert "/runtime/uptime" in names


def test_types_pattern_filter(registry):
    names = [e.info.type_name for e in registry.counter_types("/papi/*")]
    assert names
    assert all(n.startswith("/papi/") for n in names)


def test_discover_concrete_name(registry):
    spec = "/threads{locality#0/total}/time/average"
    assert registry.discover_counters(spec) == [spec]


def test_discover_default_instance(registry):
    assert registry.discover_counters("/threads/time/average") == [
        "/threads{locality#0/total}/time/average"
    ]


def test_discover_worker_wildcard(registry):
    names = registry.discover_counters("/threads{locality#0/worker-thread#*}/count/cumulative")
    assert names == [
        f"/threads{{locality#0/worker-thread#{i}}}/count/cumulative" for i in range(4)
    ]


def test_discover_unknown_type(registry):
    with pytest.raises(CounterNameError, match="unknown counter type"):
        registry.discover_counters("/threads/not-a-counter")


def test_create_counter(registry):
    c = registry.create_counter("/threads{locality#0/total}/count/cumulative")
    assert c.read() == 0.0


def test_create_wildcard_rejected(registry):
    with pytest.raises(CounterNameError, match="wildcard"):
        registry.create_counter("/threads{locality#0/worker-thread#*}/time/average")


def test_create_worker_out_of_range(registry):
    with pytest.raises(ValueError, match="index"):
        registry.create_counter("/threads{locality#0/worker-thread#99}/time/average")


def test_create_counters_expands(registry):
    counters = registry.create_counters(
        ["/threads{locality#0/worker-thread#*}/time/average", "/runtime/uptime"]
    )
    assert len(counters) == 5


def test_create_arithmetic(registry):
    c = registry.create_counter(
        "/arithmetics/add@/threads{locality#0/total}/count/cumulative,"
        "/threads{locality#0/total}/count/created"
    )
    assert c.read() == 0.0
    assert len(c.underlying) == 2


def test_create_arithmetic_with_factor(registry):
    c = registry.create_counter(
        "/arithmetics/scale@/threads{locality#0/total}/count/cumulative,factor=64"
    )
    assert c.factor == 64.0


def test_arithmetic_requires_params(registry):
    with pytest.raises(CounterNameError, match="parameters"):
        registry.create_counter("/arithmetics/add")


def test_create_statistics(registry):
    c = registry.create_counter(
        "/statistics{/threads{locality#0/total}/time/average}/rolling_average@3"
    )
    assert c.op == "rolling_average"
    assert c._window == 3


def test_statistics_requires_embedded(registry):
    with pytest.raises(CounterNameError, match="embedded"):
        registry.create_counter("/statistics{locality#0/total}/average")


def test_duplicate_registration_rejected(registry):
    entry = registry.counter_types()[0]
    with pytest.raises(ValueError, match="already registered"):
        registry.register(entry)


def test_runtime_counters_total_only(registry):
    assert registry.discover_counters("/runtime{locality#*/total}/uptime") == [
        "/runtime{locality#0/total}/uptime"
    ]
