"""The pluggable provider layer: chain resolution, validation, app counters.

Covers the tentpole's contract surface: built-ins replayed as providers
(bit-identical registries), the workload → entry-point resolution
chain, actionable rejection of malformed or conflicting providers, the
``AppCounter``/``AppCounterSet`` helper layer, and the provider
identity that feeds campaign cache keys.
"""

from __future__ import annotations

import pytest

from repro.counters import (
    ENTRY_POINT_GROUP,
    AppCounter,
    AppCounterSet,
    CounterProvider,
    CounterTypeEntry,
    ProviderError,
    build_default_registry,
    build_registry,
    builtin_providers,
    provider_identity,
)
from repro.counters.base import CounterEnvironment, CounterInfo
from repro.counters.names import CounterNameError
from repro.counters.providers import (
    entry_point_providers,
    validate_provider_name,
    validate_type_name,
)
from repro.counters.registry import CounterRegistry
from repro.counters.types import CounterType


def _simple_provider(name="testprov", type_name="/testobj/ticks"):
    """A minimal hand-rolled provider (no AppCounterSet sugar)."""

    class Provider:
        def __init__(self):
            self.name = name

        def counter_types(self, env):
            def factory(cname, info, env):
                from repro.counters.base import RawCounter

                return RawCounter(cname, info, env, lambda: 1.0)

            return [
                CounterTypeEntry(
                    info=CounterInfo(
                        type_name=type_name,
                        counter_type=CounterType.RAW,
                        help_text="test counter",
                    ),
                    factory=factory,
                    instances=lambda env: [("total", None)],
                )
            ]

    return Provider()


# -- built-ins as providers ---------------------------------------------------


def test_builtin_providers_are_counter_providers():
    for provider in builtin_providers():
        assert isinstance(provider, CounterProvider)
        assert provider.name.startswith("builtin.")


def test_provider_registry_matches_legacy_registry(counter_env):
    """The provider path produces the exact legacy counter-type set."""
    legacy_names = [
        e.info.type_name for e in build_default_registry(counter_env).counter_types()
    ]
    env2 = CounterEnvironment(
        engine=counter_env.engine,
        runtime=counter_env.runtime,
        machine=counter_env.machine,
        papi=counter_env.papi,
    )
    provider_names = [e.info.type_name for e in build_registry(env2).counter_types()]
    assert provider_names == legacy_names
    assert len(provider_names) > 20


def test_builtin_gating_matches_legacy(engine, machine):
    """No runtime → no thread/runtime/taskbench families; no papi → no /papi."""
    env = CounterEnvironment(engine=engine, machine=machine)
    registry = build_registry(env)
    names = [e.info.type_name for e in registry.counter_types()]
    assert names == []


def test_registry_records_builtin_provenance(registry):
    assert registry.provider_of("/threads/idle-rate") == "builtin.threads"
    assert registry.provider_of("/runtime/uptime") == "builtin.runtime"
    assert registry.provider_of("/papi/PAPI_TOT_INS") == "builtin.papi"
    assert set(registry.providers()) >= {
        "builtin.threads",
        "builtin.runtime",
        "builtin.taskbench",
        "builtin.papi",
    }


# -- resolution chain ---------------------------------------------------------


def test_workload_providers_installed_for_fmm(counter_env):
    registry = build_registry(counter_env, workload="fmm")
    assert registry.provider_of("/fmm/p2p-subgrids") == "fmm"
    assert registry.provider_of("/fmm/multipole-evals") == "fmm"


def test_non_fmm_workload_gets_no_fmm_counters(counter_env):
    registry = build_registry(counter_env, workload="fib")
    with pytest.raises(CounterNameError, match="unknown counter type"):
        registry.discover_counters("/fmm{locality#0/total}/multipole-evals")


def test_explicit_providers_installed(counter_env):
    registry = build_registry(counter_env, providers=(_simple_provider(),))
    assert registry.provider_of("/testobj/ticks") == "testprov"
    assert registry.discover_counters("/testobj{locality#0/total}/ticks")


def test_entry_point_providers_resolved(counter_env, monkeypatch):
    """Entry points in the repro.counter_providers group are installed."""
    from importlib import metadata

    demo = AppCounterSet("epdemo", provider="epdemo")
    demo.counter("ticks", help_text="demo ticks")

    class FakeEntryPoint:
        name = "epdemo"
        value = "fake_module:PROVIDER"

        def load(self):
            return demo

    def fake_entry_points(*, group):
        assert group == ENTRY_POINT_GROUP
        return [FakeEntryPoint()]

    monkeypatch.setattr(metadata, "entry_points", fake_entry_points)
    assert len(entry_point_providers()) == 1
    registry = build_registry(counter_env)
    assert registry.provider_of("/epdemo/ticks") == "epdemo"
    assert provider_identity()[-1] == "epdemo=fake_module:PROVIDER"


def test_broken_entry_point_is_attributed(monkeypatch):
    from importlib import metadata

    class BrokenEntryPoint:
        name = "broken"
        value = "nope:NOPE"

        def load(self):
            raise ImportError("no module named nope")

    monkeypatch.setattr(metadata, "entry_points", lambda *, group: [BrokenEntryPoint()])
    with pytest.raises(ProviderError, match="entry point 'broken'.*failed to load"):
        entry_point_providers()


def test_entry_point_factory_coercion(counter_env, monkeypatch):
    """An entry point may name a zero-arg factory instead of an instance."""
    from importlib import metadata

    def factory():
        made = AppCounterSet("facdemo", provider="facdemo")
        made.counter("ticks")
        return made

    class FactoryEntryPoint:
        name = "facdemo"
        value = "fake:factory"

        def load(self):
            return factory

    monkeypatch.setattr(metadata, "entry_points", lambda *, group: [FactoryEntryPoint()])
    registry = build_registry(counter_env)
    assert registry.provider_of("/facdemo/ticks") == "facdemo"


def test_entry_point_garbage_rejected(monkeypatch):
    from importlib import metadata

    class GarbageEntryPoint:
        name = "junk"
        value = "fake:JUNK"

        def load(self):
            return 42

    monkeypatch.setattr(metadata, "entry_points", lambda *, group: [GarbageEntryPoint()])
    with pytest.raises(ProviderError, match="does not provide a CounterProvider"):
        entry_point_providers()


def test_entry_points_can_be_disabled(counter_env, monkeypatch):
    from importlib import metadata

    def exploding(*, group):
        raise AssertionError("entry points must not be scanned")

    monkeypatch.setattr(metadata, "entry_points", exploding)
    registry = build_registry(counter_env, entry_points=False)
    assert registry.provider_of("/threads/idle-rate") == "builtin.threads"


# -- rejection: duplicates and malformed names --------------------------------


def test_duplicate_type_across_providers_names_holder(counter_env):
    first = _simple_provider(name="first")
    second = _simple_provider(name="second")
    with pytest.raises(ProviderError) as err:
        build_registry(counter_env, providers=(first, second))
    message = str(err.value)
    assert "second" in message and "first" in message
    assert "/testobj/ticks" in message
    assert "must be unique" in message


def test_provider_shadowing_builtin_rejected(counter_env):
    impostor = _simple_provider(name="impostor", type_name="/threads/idle-rate")
    with pytest.raises(ProviderError, match="'builtin.threads'"):
        build_registry(counter_env, providers=(impostor,))


def test_malformed_provider_name_rejected(counter_env):
    registry = CounterRegistry(counter_env)
    for bad in ("", "UpperCase", "9starts-with-digit", None, "has space"):
        with pytest.raises(ProviderError, match="invalid provider name"):
            registry.install(_simple_provider(name=bad))


def test_type_name_with_instance_part_rejected():
    with pytest.raises(ProviderError, match="instance part"):
        validate_type_name("p", "/obj{locality#0/total}/ticks")


def test_type_name_with_parameters_rejected():
    with pytest.raises(ProviderError, match="parameters"):
        validate_type_name("p", "/obj/ticks@fast")


def test_type_name_with_wildcard_rejected():
    with pytest.raises(ProviderError, match="wildcard"):
        validate_type_name("p", "/obj/ticks*")


def test_unparseable_type_name_rejected():
    with pytest.raises(ProviderError, match="malformed counter type"):
        validate_type_name("p", "no-leading-slash")


def test_validate_provider_name_accepts_dotted_kebab():
    for good in ("fmm", "builtin.threads", "org.example-plugin", "a1_b2"):
        assert validate_provider_name(good) == good


# -- AppCounter ---------------------------------------------------------------


def test_app_counter_add_increment_read():
    counter = AppCounter()
    assert counter.read() == 0
    assert counter.increment() == 1
    assert counter.add(5) == 6
    assert counter.read() == 6  # read is non-destructive


def test_app_counter_exchange_is_fetch_and_zero():
    counter = AppCounter()
    counter.add(7)
    assert counter.exchange() == 7
    assert counter.read() == 0
    assert counter.exchange(3) == 0
    assert counter.read() == 3


# -- AppCounterSet ------------------------------------------------------------


def test_app_counter_set_full_round_trip(counter_env):
    counters = AppCounterSet("miniapp", provider="miniapp")
    handle = counters.counter("launches", help_text="kernel launches", unit="launches")
    registry = build_registry(counter_env, providers=(counters,))
    handle.add(4)
    pc = registry.create_counter("/miniapp{locality#0/total}/launches")
    assert pc.get_counter_value().value == 4.0
    handle.increment()
    assert pc.get_counter_value().value == 5.0


def test_app_counter_set_reset_on_read_rebaselines(counter_env):
    counters = AppCounterSet("resetapp")
    handle = counters.counter("ops")
    registry = build_registry(counter_env, providers=(counters,))
    pc = registry.create_counter("/resetapp{locality#0/total}/ops")
    handle.add(10)
    assert pc.get_counter_value(reset=True).value == 10.0
    # Framework re-baselined; the app's running total is untouched.
    assert handle.read() == 10
    handle.add(2)
    assert pc.get_counter_value().value == 2.0


def test_app_counter_set_parameter_variants_share_one_type(counter_env):
    counters = AppCounterSet("variants")
    fast = counters.counter("work", parameters="fast")
    slow = counters.counter("work", parameters="slow")
    registry = build_registry(counter_env, providers=(counters,))
    assert len(registry.counter_types("/variants/*")) == 1
    fast.add(3)
    slow.add(8)
    assert registry.create_counter(
        "/variants{locality#0/total}/work@fast"
    ).get_counter_value().value == 3.0
    assert registry.create_counter(
        "/variants{locality#0/total}/work@slow"
    ).get_counter_value().value == 8.0


def test_app_counter_set_indexed_instances_and_wildcards(counter_env):
    counters = AppCounterSet("sharded")
    for i in range(3):
        counters.counter("events", instance=("shard", i))
    registry = build_registry(counter_env, providers=(counters,))
    discovered = registry.discover_counters("/sharded{locality#0/shard#*}/events")
    assert discovered == [f"/sharded{{locality#0/shard#{i}}}/events" for i in range(3)]


def test_app_counter_set_duplicate_declaration_rejected():
    counters = AppCounterSet("dupes")
    counters.counter("thing")
    with pytest.raises(ProviderError, match="twice"):
        counters.counter("thing")


def test_app_counter_set_wildcard_declaration_rejected():
    counters = AppCounterSet("wild")
    with pytest.raises(ProviderError, match="wildcard"):
        counters.counter("thing", instance=("shard", "*"))


def test_app_counter_set_bad_object_name_rejected():
    with pytest.raises(ProviderError):
        AppCounterSet("Bad Object")


def test_app_counter_set_unknown_combination_actionable(counter_env):
    counters = AppCounterSet("partial")
    counters.counter("work", parameters="fast")
    registry = build_registry(counter_env, providers=(counters,))
    with pytest.raises(CounterNameError, match="declared: total@fast"):
        registry.create_counter("/partial{locality#0/total}/work@slow")


# -- provider identity (cache keys) ------------------------------------------


def test_provider_identity_contains_builtins():
    identity = provider_identity()
    assert identity[:4] == (
        "builtin.threads",
        "builtin.runtime",
        "builtin.taskbench",
        "builtin.papi",
    )


def test_provider_identity_includes_workload_providers():
    base = provider_identity()
    with_fmm = provider_identity(workload="fmm")
    assert set(with_fmm) - set(base) == {"fmm"}


def test_provider_identity_does_not_import_plugins(monkeypatch):
    """Cache-key computation must never execute plugin code."""
    from importlib import metadata

    class LandmineEntryPoint:
        name = "landmine"
        value = "boom:BOOM"

        def load(self):  # pragma: no cover - the point is this never runs
            raise AssertionError("provider_identity must not load entry points")

    monkeypatch.setattr(metadata, "entry_points", lambda *, group: [LandmineEntryPoint()])
    assert provider_identity()[-1] == "landmine=boom:BOOM"


def test_cache_key_changes_with_provider_chain(monkeypatch, tiny_config):
    from importlib import metadata

    from repro.campaign.spec import CampaignSpec, Cell, cell_cache_key

    spec = CampaignSpec(benchmarks=("fib",), core_counts=(2,), samples=1)
    cell = Cell(benchmark="fib", runtime="hpx", cores=2, sample=0, seed=1)
    before = cell_cache_key(spec, cell)

    class FakeEntryPoint:
        name = "plug"
        value = "plug:PROVIDER"

    monkeypatch.setattr(metadata, "entry_points", lambda *, group: [FakeEntryPoint()])
    after = cell_cache_key(spec, cell)
    assert before != after
