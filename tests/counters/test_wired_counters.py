"""Thread-manager and PAPI counters cross-checked against ground truth."""

import pytest

from repro.counters.manager import ActiveCounters

from tests.conftest import fib_body


TOTAL = "locality#0/total"


def run_and_read(registry, hpx4, specs):
    ac = ActiveCounters(registry, specs)
    hpx4.run_to_completion(fib_body, 10)
    return ac.evaluate_dict(), hpx4


def test_count_cumulative_matches_stats(registry, hpx4):
    values, rt = run_and_read(registry, hpx4, ["/threads/count/cumulative"])
    assert values[f"/threads{{{TOTAL}}}/count/cumulative"] == rt.stats.tasks_executed


def test_count_created_matches(registry, hpx4):
    values, rt = run_and_read(registry, hpx4, ["/threads/count/created"])
    assert values[f"/threads{{{TOTAL}}}/count/created"] == rt.stats.tasks_created


def test_time_average_is_ratio(registry, hpx4):
    values, rt = run_and_read(registry, hpx4, ["/threads/time/average", "/threads/time/cumulative"])
    avg = values[f"/threads{{{TOTAL}}}/time/average"]
    cum = values[f"/threads{{{TOTAL}}}/time/cumulative"]
    assert cum == rt.stats.exec_ns
    assert avg == pytest.approx(rt.stats.exec_ns / rt.stats.tasks_executed)


def test_overhead_counters(registry, hpx4):
    values, rt = run_and_read(
        registry,
        hpx4,
        ["/threads/time/average-overhead", "/threads/time/cumulative-overhead"],
    )
    assert values[f"/threads{{{TOTAL}}}/time/cumulative-overhead"] == rt.stats.overhead_ns
    assert values[f"/threads{{{TOTAL}}}/time/average-overhead"] == pytest.approx(
        rt.stats.overhead_ns / rt.stats.tasks_executed
    )


def test_per_worker_counts_sum_to_total(registry, hpx4):
    values, rt = run_and_read(
        registry,
        hpx4,
        [
            "/threads{locality#0/worker-thread#*}/count/cumulative",
            "/threads/count/cumulative",
        ],
    )
    workers = sum(v for k, v in values.items() if "worker-thread" in k)
    assert workers == values[f"/threads{{{TOTAL}}}/count/cumulative"]


def test_phases_at_least_tasks(registry, hpx4):
    values, rt = run_and_read(registry, hpx4, ["/threads/count/cumulative-phases"])
    assert values[f"/threads{{{TOTAL}}}/count/cumulative-phases"] >= rt.stats.tasks_executed


def test_stolen_counter(registry, hpx4):
    values, rt = run_and_read(registry, hpx4, ["/threads/count/stolen"])
    assert values[f"/threads{{{TOTAL}}}/count/stolen"] == rt.steals_total()
    assert values[f"/threads{{{TOTAL}}}/count/stolen"] > 0  # 4 workers steal


def test_pending_queue_counter_zero_after_run(registry, hpx4):
    values, _ = run_and_read(registry, hpx4, ["/threads/count/instantaneous/pending"])
    assert values[f"/threads{{{TOTAL}}}/count/instantaneous/pending"] == 0


def test_idle_rate_in_hpx_units(registry, hpx4):
    values, rt = run_and_read(registry, hpx4, ["/threads/idle-rate"])
    idle = values[f"/threads{{{TOTAL}}}/idle-rate"]
    assert 0 <= idle <= 10_000  # 0.01% units
    assert idle == pytest.approx(rt.idle_rate() * 10_000, abs=1.0)


def test_uptime_counter(registry, hpx4, engine):
    values, _ = run_and_read(registry, hpx4, ["/runtime/uptime"])
    assert values["/runtime{locality#0/total}/uptime"] == engine.now


def test_live_tasks_counter(registry, hpx4):
    values, _ = run_and_read(registry, hpx4, ["/runtime/count/tasks-live"])
    assert values["/runtime{locality#0/total}/count/tasks-live"] == 0


def test_papi_total_matches_machine(registry, hpx4, machine):
    values, _ = run_and_read(
        registry,
        hpx4,
        [
            "/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD",
            "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_RFO",
            "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_CODE_RD",
        ],
    )
    hw_total = sum(core.hw.offcore_total() for core in machine.cores)
    assert sum(values.values()) == hw_total
    assert hw_total > 0  # fib_body touches memory


def test_papi_per_worker_instance(registry, hpx4, machine):
    values, rt = run_and_read(registry, hpx4, ["/papi{locality#0/worker-thread#0}/PAPI_TOT_CYC"])
    core_index = rt.workers[0].core_index
    assert (
        values["/papi{locality#0/worker-thread#0}/PAPI_TOT_CYC"]
        == machine.cores[core_index].hw.cycles
    )


def test_bandwidth_arithmetic_counter(registry, hpx4, engine):
    """The paper's bandwidth formula as a derived counter."""
    spec = (
        "/arithmetics/add@"
        "/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD,"
        "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_CODE_RD,"
        "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_RFO"
    )
    values, _ = run_and_read(registry, hpx4, [spec])
    requests = list(values.values())[0]
    assert requests > 0
    bandwidth = requests * 64 / (engine.now / 1e9)
    assert bandwidth > 0


def test_suspended_counter_zero_after_run(registry, hpx4):
    values, rt = run_and_read(
        registry, hpx4, ["/threads{locality#0/total}/count/instantaneous/suspended"]
    )
    assert values[f"/threads{{{TOTAL}}}/count/instantaneous/suspended"] == 0
    assert rt.stats.suspended_tasks == 0


def test_active_counter_zero_after_run(registry, hpx4):
    values, _ = run_and_read(
        registry, hpx4, ["/threads{locality#0/total}/count/instantaneous/active"]
    )
    assert values[f"/threads{{{TOTAL}}}/count/instantaneous/active"] == 0


def test_pending_wait_time_counter(registry, hpx4):
    values, rt = run_and_read(registry, hpx4, ["/threads/wait-time/pending"])
    avg_wait = values[f"/threads{{{TOTAL}}}/wait-time/pending"]
    assert avg_wait > 0
    assert avg_wait == pytest.approx(rt.stats.pending_wait_ns / rt.stats.pending_waits)


def test_cross_socket_steal_counter(registry, hpx4):
    values, rt = run_and_read(registry, hpx4, ["/threads/count/stolen-cross-socket"])
    # 4 compact workers share socket 0: no cross-socket steals.
    assert values[f"/threads{{{TOTAL}}}/count/stolen-cross-socket"] == 0


def test_scheduler_utilization_counter(registry, hpx4):
    values, _ = run_and_read(
        registry, hpx4, ["/scheduler{locality#0/total}/utilization/instantaneous"]
    )
    assert values["/scheduler{locality#0/total}/utilization/instantaneous"] == 0.0
