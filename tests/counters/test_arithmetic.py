"""Arithmetic (derived) counters."""

import pytest

from repro.counters.arithmetic import ArithmeticCounter
from repro.counters.base import CounterEnvironment, CounterInfo, RawCounter
from repro.counters.names import parse_counter_name
from repro.counters.types import CounterType
from repro.simcore.events import Engine


def make(op, values, factor=1.0):
    env = CounterEnvironment(engine=Engine())
    info = CounterInfo("/test/raw", CounterType.RAW, "t")
    underlying = [
        RawCounter(parse_counter_name("/test/raw"), info, env, lambda v=v: v)
        for v in values
    ]
    name = parse_counter_name(f"/arithmetics/{op}@x")
    ainfo = CounterInfo(f"/arithmetics/{op}", CounterType.ARITHMETIC, "t")
    return ArithmeticCounter(name, ainfo, env, underlying, op, factor)


def test_add():
    assert make("add", [1, 2, 3]).read() == 6


def test_subtract():
    assert make("subtract", [10, 3, 2]).read() == 5


def test_multiply():
    assert make("multiply", [2, 3, 4]).read() == 24


def test_divide():
    assert make("divide", [100, 4, 5]).read() == 5


def test_divide_by_zero_is_zero():
    assert make("divide", [100, 0]).read() == 0.0


def test_mean():
    assert make("mean", [2, 4, 6]).read() == 4


def test_scale():
    assert make("scale", [10], factor=64).read() == 640


def test_scale_needs_one_underlying():
    with pytest.raises(ValueError):
        make("scale", [1, 2])


def test_subtract_needs_two():
    with pytest.raises(ValueError):
        make("subtract", [1])


def test_unsupported_op():
    with pytest.raises(ValueError, match="unsupported"):
        make("power", [1])


def test_empty_underlying_rejected():
    with pytest.raises(ValueError):
        make("add", [])


def test_reset_propagates():
    env = CounterEnvironment(engine=Engine())
    info = CounterInfo("/test/raw", CounterType.RAW, "t")
    from repro.counters.base import MonotonicCounter

    state = {"v": 100.0}
    mono = MonotonicCounter(parse_counter_name("/test/raw"), info, env, lambda: state["v"])
    name = parse_counter_name("/arithmetics/add@x")
    ainfo = CounterInfo("/arithmetics/add", CounterType.ARITHMETIC, "t")
    c = ArithmeticCounter(name, ainfo, env, [mono], "add")
    assert c.read() == 100.0
    c.reset()
    assert c.read() == 0.0
