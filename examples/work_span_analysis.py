#!/usr/bin/env python3
"""Work/span analysis of an Inncabs benchmark.

Records the full task trace of one run, reconstructs the computation
DAG (spawn + join edges) and computes work T1, span T-inf and average
parallelism T1/T-inf — the speedup ceiling no scheduler can beat —
then compares it against the speedups the runtime actually achieves.

Run:  python examples/work_span_analysis.py [benchmark]
"""

import sys

from repro.api import Session, WorkloadSpec
from repro.inncabs.presets import preset_params
from repro.inncabs.suite import available_benchmarks, get_benchmark
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine
from repro.trace import TraceRecorder, work_span


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sort"
    if name not in available_benchmarks():
        raise SystemExit(f"unknown benchmark {name}")
    bench = get_benchmark(name)
    params = bench.params_with_defaults(preset_params(name, "small"))
    root_fn, root_args = bench.make_root(params)

    engine = Engine()
    runtime = HpxRuntime(engine, Machine(), num_workers=1)
    recorder = TraceRecorder(runtime)
    with recorder:
        runtime.run_to_completion(root_fn, *root_args)

    ws = work_span(recorder)
    print(f"{name} (small preset): task DAG analysis")
    print(f"  tasks                {ws.tasks:10d}")
    print(f"  dependency edges     {ws.edges:10d}")
    print(f"  work  T1             {ws.work_ns/1e6:10.3f} ms")
    print(f"  span  T-inf          {ws.span_ns/1e6:10.3f} ms")
    print(f"  avg parallelism      {ws.average_parallelism:10.1f}x   (speedup ceiling)")

    print("\nmeasured strong scaling vs the ceiling:")
    session = Session(runtime="hpx")
    base = None
    for cores in (1, 2, 4, 8, 16):
        result = session.run(WorkloadSpec(name), cores=cores, params=dict(params))
        if base is None:
            base = result.exec_time_ns
        speedup = base / result.exec_time_ns
        bar = "#" * round(speedup * 3)
        print(f"  {cores:2d} cores  {speedup:5.2f}x  {bar}")
    print(
        f"\nBrent's bound holds: every measured speedup stays below "
        f"{ws.average_parallelism:.1f}x."
    )


if __name__ == "__main__":
    main()
