#!/usr/bin/env python3
"""Strong-scaling study of one Inncabs benchmark (the paper's Section VI
workflow): execution times for HPX vs the C++11 Standard model across
core counts, with speedups and the Table-V-style scaling label.

Run:  python examples/inncabs_scaling.py [benchmark] [--cores 1,2,4,...]

Try `strassen` (fine grain: HPX wins big), `alignment` (coarse: both
scale), or `uts` (very fine: the Standard version aborts).
"""

import argparse

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_strong_scaling
from repro.inncabs.suite import available_benchmarks


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="strassen", choices=available_benchmarks())
    parser.add_argument("--cores", default="1,2,4,8,10,16,20")
    parser.add_argument("--samples", type=int, default=1)
    args = parser.parse_args()

    core_counts = tuple(int(c) for c in args.cores.split(","))
    config = ExperimentConfig(samples=args.samples, core_counts=core_counts)

    print(f"strong scaling: {args.benchmark} "
          f"(cores {core_counts}, {args.samples} sample(s), medians)\n")
    curves = {
        "HPX": run_strong_scaling(args.benchmark, "hpx", config=config),
        "C++11 std": run_strong_scaling(args.benchmark, "std", config=config),
    }

    header = f"{'cores':>5s}"
    for label in curves:
        header += f"  {label + ' ms':>14s} {'x':>6s}"
    print(header)
    for i, cores in enumerate(core_counts):
        row = f"{cores:5d}"
        for curve in curves.values():
            point = curve.points[i]
            if point.aborted:
                row += f"  {'Abort':>14s} {'-':>6s}"
            else:
                speedup = curve.speedup(cores)
                row += f"  {point.median_exec_ms:14.3f} {speedup:6.2f}"
        print(row)

    print()
    for label, curve in curves.items():
        print(f"{label:10s} scaling: {curve.scales_to()}")


if __name__ == "__main__":
    main()
