#!/usr/bin/env python3
"""APEX-style runtime adaptation driven by performance counters.

The paper (Section VII) positions the counter framework as the basis
for "runtime adaptive mechanisms ... such as throttling the number of
cores used to save energy".  This example runs a workload whose
parallelism collapses halfway through; a policy sampling the idle-rate
counter parks the idle workers, cutting the active core-time (an energy
proxy) with almost no slowdown.

Run:  python examples/adaptive_throttling.py
"""

from repro.apex.policy import PolicyEngine
from repro.apex.throttle import IDLE_RATE_COUNTER, ConcurrencyThrottlePolicy
from repro.counters.base import CounterEnvironment
from repro.counters.registry import build_default_registry
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.clock import us
from repro.simcore.events import Engine
from repro.simcore.machine import Machine


def phased_workload(ctx):
    """Wide parallel phase, then a long serial tail."""

    def parallel_piece(pctx, k):
        yield pctx.compute(120_000, membytes=4096)
        return k

    def serial_chain(sctx, k):
        if k == 0:
            return 0
        yield sctx.compute(60_000)
        fut = yield sctx.async_(serial_chain, k - 1)
        value = yield sctx.wait(fut)
        return value + 1

    futures = []
    for k in range(64):
        futures.append((yield ctx.async_(parallel_piece, k)))
    yield ctx.wait_all(futures)
    fut = yield ctx.async_(serial_chain, 120)
    tail = yield ctx.wait(fut)
    return tail


def run(adaptive: bool) -> tuple[float, float, list]:
    engine = Engine()
    machine = Machine()
    runtime = HpxRuntime(engine, machine, num_workers=8)
    decisions = []
    if adaptive:
        env = CounterEnvironment(engine=engine, runtime=runtime, machine=machine)
        registry = build_default_registry(env)
        policy = ConcurrencyThrottlePolicy(runtime=runtime, upper_idle=3500)
        pe = PolicyEngine(
            engine=engine,
            runtime=runtime,
            registry=registry,
            counter_specs=[IDLE_RATE_COUNTER],
            period_ns=us(300),
            rules=[policy.rule()],
        )
        pe.start()
        runtime.run_to_completion(phased_workload)
        decisions = pe.history
    else:
        runtime.run_to_completion(phased_workload)
    wall_ms = engine.now / 1e6
    # Energy proxy: integral of *powered* (enabled) workers over time —
    # a parked core can drop to a sleep state.
    timeline = [(0, 8)] + [(d.time_ns, d.decision.value) for d in decisions]
    timeline.append((engine.now, timeline[-1][1]))
    powered_core_ns = sum(
        (t1 - t0) * active for (t0, active), (t1, _) in zip(timeline, timeline[1:])
    )
    return wall_ms, powered_core_ns / 1e6, decisions


def main() -> None:
    static_wall, static_powered, _ = run(adaptive=False)
    adaptive_wall, adaptive_powered, decisions = run(adaptive=True)

    print("static 8 workers:   wall %7.2f ms   powered core-time %7.2f core-ms"
          % (static_wall, static_powered))
    print("adaptive throttle:  wall %7.2f ms   powered core-time %7.2f core-ms"
          % (adaptive_wall, adaptive_powered))
    slowdown = (adaptive_wall - static_wall) / static_wall * 100
    saved = (static_powered - adaptive_powered) / static_powered * 100
    print(f"\nslowdown: {slowdown:+.1f}%   powered core-time saved: {saved:.0f}%")
    print("decisions taken:")
    for d in decisions:
        print(f"  t={d.time_ns/1e6:7.2f} ms  {d.rule}: {d.decision.action} -> "
              f"{d.decision.value} workers")


if __name__ == "__main__":
    main()
