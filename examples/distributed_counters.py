#!/usr/bin/env python3
"""Remote performance-counter access across localities.

The paper (Section IV): "any Performance Counter can be accessed
remotely (from a different location) or locally (from the same
locality)".  This example builds a three-locality cluster, runs work on
every node, then queries each node's thread-manager counters *from
locality 0* over parcels — plus AGAS symbolic names and the parcel
counters that account for the monitoring traffic itself.

Run:  python examples/distributed_counters.py
"""

from repro.distributed import DistributedSystem
from repro.simcore.events import Engine
from repro.simcore.machine import MachineSpec


def workload(ctx, pieces: int):
    """A small fork-join burst, different size per locality."""

    def piece(pctx, k):
        yield pctx.compute(20_000, membytes=2048)
        return k

    futures = []
    for k in range(pieces):
        futures.append((yield ctx.async_(piece, k)))
    values = yield ctx.wait_all(futures)
    return sum(values)


def main() -> None:
    engine = Engine()
    system = DistributedSystem(engine, localities=3, cores_per_locality=4,
                               machine_spec=MachineSpec())

    print("== run different-sized workloads on each locality ==")
    futures = []
    for loc in range(3):
        futures.append(system.async_remote(0, loc, workload, 40 * (loc + 1)))
    # Register each locality's application component in AGAS while the
    # work is in flight.
    for loc in range(3):
        system.register_name(loc, f"app/worker#{loc}", payload={"pieces": 40 * (loc + 1)})
    system.run()
    for loc, fut in enumerate(futures):
        print(f"  locality {loc}: workload result {fut.value()}")

    print("\n== query every locality's counters from locality 0 ==")
    specs = [
        "/threads{locality#0/total}/count/cumulative",
        "/threads{locality#0/total}/time/average",
        "/threads{locality#0/total}/idle-rate",
    ]
    queries = {
        (loc, spec): system.query_counter(0, loc, spec)
        for loc in range(3)
        for spec in specs
    }
    system.run()
    for loc in range(3):
        print(f"  locality {loc}:")
        for spec in specs:
            print(f"    {spec.split('/')[-1]:20s} {queries[(loc, spec)].value():12.1f}")

    print("\n== AGAS resolution (cold, then cached) ==")
    cold = system.resolve_name(2, "app/worker#1")
    system.run()
    print(f"  resolved app/worker#1 -> locality {cold.value().locality}, "
          f"payload {cold.value().payload}")
    t_before = engine.now
    warm = system.resolve_name(2, "app/worker#1")
    system.run()
    print(f"  cached re-resolution took {(engine.now - t_before)} ns "
          f"(hits={system.agas.stats.cache_hits})")

    print("\n== the monitoring traffic, measured by the parcel counters ==")
    for loc in range(3):
        registry = system.localities[loc].registry
        sent = registry.create_counter(f"/parcels{{locality#{loc}/total}}/count/sent").read()
        recv = registry.create_counter(f"/parcels{{locality#{loc}/total}}/count/received").read()
        print(f"  locality {loc}: parcels sent {sent:4.0f}  received {recv:4.0f}")


if __name__ == "__main__":
    main()
