#!/usr/bin/env python3
"""Parallel algorithms and executors on the task runtime (Section III).

Estimates pi two ways on the simulated node and shows how the executor's
chunking interacts with the performance counters: big chunks mean few
coarse tasks (low overhead, poor balance), small chunks mean many fine
tasks (visible scheduling overhead) — the granularity trade-off the
whole paper quantifies, reproduced in five lines of algorithm code.

Run:  python examples/parallel_algorithms.py
"""

import operator

from repro.counters.base import CounterEnvironment
from repro.counters.manager import ActiveCounters
from repro.counters.registry import build_default_registry
from repro.runtime.executors import StaticChunkSize, transform_reduce
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine
from repro.simcore.rng import derive_rng

SAMPLES = 200_000
NS_PER_SAMPLE = 12  # simulated cost of one dart


def estimate_pi(chunk_size: int, cores: int = 8):
    """Monte-Carlo pi with a fixed executor chunk size."""
    rng = derive_rng(42, "pi")
    xs = rng.random(SAMPLES)
    ys = rng.random(SAMPLES)
    hits_in = (xs * xs + ys * ys <= 1.0).astype(int)

    def body(ctx):
        total = yield from transform_reduce(
            ctx,
            range(0, SAMPLES, 1000),  # 200 blocks of 1000 darts
            transform=lambda lo: int(hits_in[lo : lo + 1000].sum()),
            reduce_fn=operator.add,
            initial=0,
            work_per_item=NS_PER_SAMPLE * 1000,
            chunking=StaticChunkSize(chunk_size),
        )
        return 4.0 * total / SAMPLES

    engine = Engine()
    machine = Machine()
    runtime = HpxRuntime(engine, machine, num_workers=cores)
    env = CounterEnvironment(engine=engine, runtime=runtime, machine=machine)
    registry = build_default_registry(env)
    counters = ActiveCounters(
        registry,
        [
            "/threads{locality#0/total}/count/cumulative",
            "/threads{locality#0/total}/time/average",
            "/threads{locality#0/total}/time/average-overhead",
            "/threads{locality#0/total}/idle-rate",
        ],
    )
    counters.start()
    pi = runtime.run_to_completion(body)
    values = counters.evaluate_dict()
    return pi, engine.now, values


def main() -> None:
    print(f"monte-carlo pi, {SAMPLES:,} darts in 200 blocks, 8 workers\n")
    header = f"{'chunk':>6s} {'pi':>8s} {'time ms':>9s} {'tasks':>7s} {'grain us':>9s} {'ovh ns':>7s} {'idle %':>7s}"
    print(header)
    for chunk in (100, 25, 5, 1):
        pi, time_ns, counters = estimate_pi(chunk)
        tasks = counters["/threads{locality#0/total}/count/cumulative"]
        grain = counters["/threads{locality#0/total}/time/average"] / 1e3
        overhead = counters["/threads{locality#0/total}/time/average-overhead"]
        idle = counters["/threads{locality#0/total}/idle-rate"] / 100
        print(
            f"{chunk:6d} {pi:8.4f} {time_ns/1e6:9.3f} {tasks:7.0f} "
            f"{grain:9.1f} {overhead:7.0f} {idle:7.1f}"
        )
    print(
        "\nBig chunks: few coarse tasks, idle workers (poor balance)."
        "\nSmall chunks: good balance until scheduling overhead eats the gain"
        "\n— the granularity trade-off of the paper, straight from the counters."
    )


if __name__ == "__main__":
    main()
