#!/usr/bin/env python3
"""Quickstart: run one Inncabs benchmark on both runtimes.

Reproduces the paper's headline in one page: the same Fibonacci task
graph, executed by the HPX-style lightweight-task runtime and by the
``std::async`` thread-per-task model, with the HPX performance counters
reporting task duration and scheduling overhead.

Run:  python examples/quickstart.py
"""

from repro import Session
from repro.workloads import WorkloadSpec

TASK_DURATION = "/threads{locality#0/total}/time/average"
TASK_OVERHEAD = "/threads{locality#0/total}/time/average-overhead"


def main() -> None:
    print("fib(19) = 13,529 very fine (~1.4 us) tasks, 4 cores\n")

    hpx = Session(runtime="hpx", cores=4).run(WorkloadSpec.parse("fib"))
    print("HPX-style runtime:")
    print(f"  execution time   {hpx.exec_time_ms:10.2f} ms")
    print(f"  tasks executed   {hpx.tasks_executed:10d}")
    print(f"  peak live tasks  {hpx.peak_live_tasks:10d}")
    print(f"  task duration    {hpx.counter(TASK_DURATION):10.0f} ns   (counter)")
    print(f"  task overhead    {hpx.counter(TASK_OVERHEAD):10.0f} ns   (counter)")

    std = Session(runtime="std", cores=4).run(WorkloadSpec.parse("fib"))
    print("\nstd::async (one OS thread per task):")
    if std.aborted:
        print(f"  ABORTED: {std.abort_reason}")
        print(f"  peak live threads {std.peak_live_tasks:8d}")
        print(
            "\nThis is the paper's Table V row for fib: the Standard version"
            "\nfails outright — the live-pthread count exhausts memory —"
            "\nwhile HPX finishes with a bounded footprint."
        )
    else:
        print(f"  execution time   {std.exec_time_ms:10.2f} ms")
        slowdown = std.exec_time_ns / hpx.exec_time_ns
        print(f"\nstd::async is {slowdown:.1f}x slower on the same task graph.")


if __name__ == "__main__":
    main()
