#!/usr/bin/env python3
"""The performance-counter framework, hands on (paper Section IV).

Demonstrates the full counter workflow on a live application:

1. discover counter types and expand wildcard instances;
2. attach an in-band periodic query (the ``--hpx:print-counter``
   convenience layer) that samples while the benchmark runs;
3. evaluate-and-reset around the run, exactly like the paper's
   per-sample protocol;
4. build a derived bandwidth counter with ``/arithmetics``.

Run:  python examples/counter_explorer.py
"""

from repro.counters.base import CounterEnvironment
from repro.counters.manager import ActiveCounters, format_counter_values
from repro.counters.query import PeriodicQuery
from repro.counters.registry import build_default_registry
from repro.inncabs.suite import get_benchmark
from repro.papi.hw import PapiSubstrate
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.clock import us
from repro.simcore.events import Engine
from repro.simcore.machine import Machine


def main() -> None:
    engine = Engine()
    machine = Machine()
    runtime = HpxRuntime(engine, machine, num_workers=4)
    env = CounterEnvironment(
        engine=engine, runtime=runtime, machine=machine, papi=PapiSubstrate(machine)
    )
    registry = build_default_registry(env)

    print("== discovery ==")
    for entry in registry.counter_types("/threads/time/*"):
        print(f"  {entry.info.type_name:40s} {entry.info.help_text}")
    wildcard = "/threads{locality#0/worker-thread#*}/count/cumulative"
    print(f"\n  expanding {wildcard}:")
    for name in registry.discover_counters(wildcard):
        print(f"    {name}")

    print("\n== periodic in-band query (every 2 ms of simulated time) ==")
    active = ActiveCounters(
        registry,
        [
            "/threads{locality#0/total}/count/cumulative",
            "/threads{locality#0/total}/idle-rate",
        ],
    )
    def show(values):
        print("  " + format_counter_values(values).replace("\n", "\n  ") + "\n")

    query = PeriodicQuery(
        active,
        engine=engine,
        runtime=runtime,
        interval_ns=us(2000),
        in_band=True,
        sink=show,
    )
    query.start()

    bench = get_benchmark("sort")
    params = bench.params_with_defaults(None)
    root_fn, root_args = bench.make_root(params)
    future = runtime.submit(root_fn, *root_args)
    engine.run()
    result = future.value()
    print(f"sort finished at t={engine.now/1e6:.2f} ms, "
          f"verified={bench.verify(result, params)}")

    print("\n== evaluate + reset (per-sample protocol) ==")
    sample = ActiveCounters(
        registry,
        [
            "/threads{locality#0/total}/time/average",
            "/threads{locality#0/total}/time/average-overhead",
        ],
    )
    for row in sample.evaluate_active_counters(reset=True, description="sample 1"):
        print(f"  {row.name} = {row.value:.1f} ns")

    print("\n== derived counter: the paper's bandwidth formula ==")
    bandwidth_requests = registry.create_counter(
        "/arithmetics/add@"
        "/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD,"
        "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_CODE_RD,"
        "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_RFO"
    )
    requests = bandwidth_requests.read()
    gbs = requests * 64 / (engine.now / 1e9) / 1e9
    print(f"  offcore requests: {requests:.0f}  ->  {gbs:.2f} GB/s")


if __name__ == "__main__":
    main()
