"""Ablation: hyper-threading on vs off (Section V-B).

"We ran experiments with hyper-threading activated and compared results
for running one thread per core to running two threads per core
resulting in small change in performance.  We deactivated
hyper-threading and ... present only results with hyper-threading
disabled."

Measured here: 40 workers on 20 cores (SMT 2) vs 20 workers (SMT off)
for a fine-grained and a compute-bound tree — both within a small band
of each other, reproducing the paper's justification for disabling HT.
"""

from __future__ import annotations

from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine

from conftest import run_once


def _tree(ctx, n: int, leaf_ns: int, combine_ns: int):
    if n < 2:
        yield ctx.compute(leaf_ns)
        return n
    fa = yield ctx.async_(_tree, n - 1, leaf_ns, combine_ns)
    fb = yield ctx.async_(_tree, n - 2, leaf_ns, combine_ns)
    a = yield ctx.wait(fa)
    b = yield ctx.wait(fb)
    yield ctx.compute(combine_ns, membytes=256)
    return a + b


def _time(workers: int, smt: int, leaf_ns: int, combine_ns: int) -> int:
    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=workers, smt=smt)
    value = rt.run_to_completion(_tree, 17, leaf_ns, combine_ns)
    assert value == 1597
    return engine.now


def test_hyperthreading_small_change(benchmark):
    def measure():
        return {
            "fine ht-off": _time(20, 1, leaf_ns=650, combine_ns=900),
            "fine ht-on": _time(40, 2, leaf_ns=650, combine_ns=900),
            "compute ht-off": _time(20, 1, leaf_ns=40_000, combine_ns=25_000),
            "compute ht-on": _time(40, 2, leaf_ns=40_000, combine_ns=25_000),
        }

    times = run_once(benchmark, measure)
    print()
    for key, t in times.items():
        print(f"  {key:15s} {t/1e6:8.3f} ms")

    fine_change = abs(times["fine ht-on"] - times["fine ht-off"]) / times["fine ht-off"]
    compute_change = abs(times["compute ht-on"] - times["compute ht-off"]) / times["compute ht-off"]
    # "Small change in performance" — well under the gains the core
    # counts themselves produce.
    assert fine_change < 0.20, f"fine-grain HT change {fine_change:.0%}"
    assert compute_change < 0.30, f"compute-bound HT change {compute_change:.0%}"
