"""Table V — benchmark classification and granularity.

Checks, for all fourteen benchmarks:

- the measured 1-core ``/threads/time/average`` lands in the paper's
  granularity class (coarse / moderate / fine / very fine);
- the std::async versions of exactly Fib, Health, NQueens and UTS fail;
- every HPX version completes;
- very fine benchmarks show HPX task overheads of 0.5-1 us
  (Section VI).
"""

from __future__ import annotations

from repro.api import Session
from repro.experiments.tables import table5
from repro.experiments.report import render_table5

from conftest import run_once

_OVERHEAD = "/threads{locality#0/total}/time/average-overhead"

# "variable/..." classes compare on the base class.
def base_class(granularity: str) -> str:
    return granularity.split("/")[-1].strip()


def test_table5(benchmark, table_config):
    rows = run_once(benchmark, table5, config=table_config)
    print()
    print(render_table5(rows))

    assert len(rows) == 14
    for row in rows:
        assert base_class(row.granularity) == base_class(row.paper_granularity), (
            f"{row.benchmark}: measured {row.task_duration_us:.2f} us -> "
            f"{row.granularity}, paper says {row.paper_granularity}"
        )
        # Grain sizes within ~2.5x of the paper's absolute numbers.
        ratio = row.task_duration_us / row.paper_task_duration_us
        assert 0.4 < ratio < 2.5, (
            f"{row.benchmark}: grain {row.task_duration_us:.2f} us vs paper "
            f"{row.paper_task_duration_us} us"
        )

    std_fail = {r.benchmark for r in rows if r.scaling_std == "fail"}
    assert std_fail == {"fib", "health", "nqueens", "uts"}
    assert all(r.scaling_hpx != "fail" for r in rows)


def test_very_fine_task_overhead_band(benchmark):
    """Section VI: 0.5-1 us task overheads for the very fine benchmarks."""

    def measure():
        session = Session(runtime="hpx", cores=1)
        overheads = {}
        for name in ("fib", "health", "uts", "intersim", "qap"):
            result = session.run(name)
            overheads[name] = result.counter(_OVERHEAD)
        return overheads

    overheads = run_once(benchmark, measure)
    print()
    for name, ns in overheads.items():
        print(f"  {name:10s} task overhead {ns:7.1f} ns")
        assert 400 <= ns <= 1_300, f"{name}: overhead {ns:.0f} ns outside 0.5-1 us band"
