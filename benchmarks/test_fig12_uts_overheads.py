"""Fig. 12 — UTS overhead decomposition (HPX counters).

Paper: scheduling overheads ~50% of the task time; after ~4 cores task
time exceeds the ideal and it increases past the socket boundary —
poor scaling and increased execution time past 10 cores.
"""

from __future__ import annotations

from repro.experiments.figures import overhead_figure
from repro.experiments.report import render_overhead_figure

from conftest import run_once


def _at(fig, cores):
    return fig.cores.index(cores)


def test_fig12_uts_overheads(benchmark, figure_config):
    fig = run_once(benchmark, overhead_figure, "fig12", config=figure_config)
    print()
    print(render_overhead_figure(fig))

    # Scheduling overhead ~50% of task time.
    i1 = _at(fig, 1)
    ratio = fig.sched_overhead_per_core_ms[i1] / fig.task_time_per_core_ms[i1]
    assert 0.3 < ratio < 0.9, f"sched/task ratio {ratio:.2f}, paper says ~0.5"
    # Task time exceeds ideal past the socket boundary.
    i20 = _at(fig, 20)
    assert fig.task_time_per_core_ms[i20] > 1.15 * fig.ideal_task_time_ms[i20]
    # Execution time does not improve past the boundary.
    i10 = _at(fig, 10)
    assert fig.exec_time_ms[i20] >= fig.exec_time_ms[i10] * 0.9
