"""Section V-C — the cost of collecting the counters themselves.

Paper: "The overhead caused by collecting these counters is usually
very small (within variability noise), but sometimes are up to 10% with
very fine granularity tasks when run on one or two cores.  When PAPI
counters are queried this overhead can go up to 16%."
"""

from __future__ import annotations

from repro.api import Session
from repro.experiments.config import PAPI_COUNTERS, SOFTWARE_COUNTERS

from conftest import run_once


def _overhead(name: str, cores: int, specs) -> float:
    session = Session(runtime="hpx", cores=cores)
    plain = session.run(name, collect_counters=False)
    counted = session.run(name, counters=specs)
    return (counted.exec_time_ns - plain.exec_time_ns) / plain.exec_time_ns * 100


def test_counter_collection_overhead(benchmark):
    def measure():
        return {
            "fib sw 1c": _overhead("fib", 1, SOFTWARE_COUNTERS),
            "fib sw+papi 1c": _overhead("fib", 1, SOFTWARE_COUNTERS + PAPI_COUNTERS),
            "fib sw 2c": _overhead("fib", 2, SOFTWARE_COUNTERS),
            "alignment sw+papi 1c": _overhead(
                "alignment", 1, SOFTWARE_COUNTERS + PAPI_COUNTERS
            ),
        }

    overheads = run_once(benchmark, measure)
    print()
    for key, pct in overheads.items():
        print(f"  {key:22s} {pct:5.1f}%")

    # Very fine tasks: software counters cost real but bounded time.
    assert 1.0 < overheads["fib sw 1c"] <= 12.0
    # PAPI raises it (paper: up to 16%).
    assert overheads["fib sw+papi 1c"] > overheads["fib sw 1c"]
    assert overheads["fib sw+papi 1c"] <= 18.0
    # Coarse tasks: within noise.
    assert overheads["alignment sw+papi 1c"] < 1.0
