"""Fig. 2 — Pyramids execution time, HPX vs C++11 Standard.

Paper: moderate grain (~250 us); the only benchmark where the Standard
version beats HPX on more than one core — up to ~14 cores — after which
the curves converge: "the minimum execution times are equivalent", with
HPX showing the higher speedup factor (13 vs 8 at 20 cores).
"""

from __future__ import annotations

from repro.experiments.figures import execution_time_figure
from repro.experiments.report import render_execution_time_figure

from conftest import run_once


def test_fig2_pyramids(benchmark, figure_config):
    fig = run_once(benchmark, execution_time_figure, "fig2", config=figure_config)
    print()
    print(render_execution_time_figure(fig))

    # std is faster through the mid-range (paper: until ~14 cores)...
    std_faster = [
        cores
        for cores in (2, 4, 6, 8, 10, 12, 14)
        if fig.std.point(cores).median_exec_ns < fig.hpx.point(cores).median_exec_ns
    ]
    assert len(std_faster) >= 5, f"std faster only at {std_faster}"
    # ... but not at 1 core or at 20.
    assert fig.hpx.point(20).median_exec_ns <= fig.std.point(20).median_exec_ns
    # Minimum execution times are equivalent (within ~40%).
    min_hpx = min(p.median_exec_ns for p in fig.hpx.points)
    min_std = min(p.median_exec_ns for p in fig.std.points)
    assert 0.6 < min_hpx / min_std < 1.4
    # HPX's speedup factor exceeds the Standard's (paper: 13 vs 8).
    assert fig.hpx.speedup(20) > fig.std.speedup(20)
    assert fig.hpx.speedup(20) > 10
