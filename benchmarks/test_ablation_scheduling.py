"""Ablations of the runtime's design choices (DESIGN.md §2/§6).

The paper's results rest on two scheduler decisions HPX makes that the
``std::async`` model does not; these benchmarks knock each one out in
isolation:

1. **LIFO local queues (depth-first execution).**  Switching the local
   discipline to FIFO makes the HPX runtime execute recursive
   benchmarks breadth-first, exploding the live-task footprint —
   exactly the structural property that kills the thread-per-task
   model (there the explosion costs memory; here it costs footprint
   and scheduling locality).
2. **Topology-aware stealing (same-socket victims first).**  Random or
   far-first victim orders pay the cross-socket steal latency and the
   coherence channel far more often, measurably slowing fine-grained
   workloads on two sockets.
"""

from __future__ import annotations


from repro.runtime.config import HpxParams
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine

from conftest import run_once


def _run_fib(params: HpxParams, cores: int, n: int = 17):
    def fib(ctx, k):
        if k < 2:
            yield ctx.compute(650)
            return k
        fa = yield ctx.async_(fib, k - 1)
        fb = yield ctx.async_(fib, k - 2)
        a = yield ctx.wait(fa)
        b = yield ctx.wait(fb)
        yield ctx.compute(900, membytes=192)
        return a + b

    expected = {17: 1597, 18: 2584}[n]
    engine = Engine()
    rt = HpxRuntime(engine, Machine(), num_workers=cores, params=params)
    value = rt.run_to_completion(fib, n)
    assert value == expected
    return engine.now, rt


def test_ablation_lifo_vs_fifo_queues(benchmark):
    def measure():
        lifo_time, lifo_rt = _run_fib(HpxParams(local_queue_discipline="lifo"), cores=4)
        fifo_time, fifo_rt = _run_fib(HpxParams(local_queue_discipline="fifo"), cores=4)
        return {
            "lifo_peak_live": lifo_rt.stats.peak_live_tasks,
            "fifo_peak_live": fifo_rt.stats.peak_live_tasks,
            "lifo_time_ns": lifo_time,
            "fifo_time_ns": fifo_time,
        }

    out = run_once(benchmark, measure)
    print()
    for key, value in out.items():
        print(f"  {key:15s} {value:>12,}")
    # Depth-first keeps the footprint ~constant in the tree depth;
    # breadth-first holds a large fraction of the tree live at once.
    assert out["fifo_peak_live"] > 20 * out["lifo_peak_live"]
    assert out["lifo_peak_live"] < 200


def test_ablation_steal_order(benchmark):
    def measure():
        times = {}
        for order in ("near-first", "random", "far-first"):
            t, rt = _run_fib(HpxParams(steal_order=order), cores=20, n=18)
            times[order] = {
                "time_ns": t,
                "cross_socket_steals": sum(
                    w.stats.steals_cross_socket for w in rt.workers
                ),
                "steals": rt.steals_total(),
            }
        return times

    out = run_once(benchmark, measure)
    print()
    for order, stats in out.items():
        print(
            f"  {order:11s} time={stats['time_ns']/1e6:7.2f} ms  "
            f"steals={stats['steals']:5d}  cross-socket={stats['cross_socket_steals']:5d}"
        )
    # Topology-aware stealing crosses the socket less often than either
    # alternative, and is at least as fast.
    near = out["near-first"]
    for other in ("random", "far-first"):
        assert near["cross_socket_steals"] <= out[other]["cross_socket_steals"]
        assert near["time_ns"] <= out[other]["time_ns"] * 1.05
