#!/usr/bin/env python3
"""Event-core microbenchmark — standalone entry point.

Thin wrapper over ``repro bench-core`` so the benchmark can run without
installing the package::

    python benchmarks/bench_core.py --mode quick --out BENCH_core.json \
        --baseline results/baseline_core.json

Measures events/sec of the two-tier event engine against the legacy
binary-heap engine (synthetic patterns + fib/uts/health reference runs)
and exits non-zero when the engines' simulated results diverge or the
events/sec ratio regresses past the threshold.  See
:mod:`repro.experiments.bench_core`.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["bench-core", *sys.argv[1:]]))
