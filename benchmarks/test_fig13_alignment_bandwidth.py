"""Fig. 13 — Alignment OFFCORE bandwidth (coarse-grained tasks).

Paper formula (Section V-C): sum the three offcore request counters,
multiply by the 64-byte cache line and divide by execution time.  The
estimate grows with the core count as more DP matrices stream
concurrently.
"""

from __future__ import annotations

from repro.experiments.figures import bandwidth_figure
from repro.experiments.report import render_bandwidth_figure

from conftest import run_once


def test_fig13_alignment_bandwidth(benchmark, figure_config):
    fig = run_once(benchmark, bandwidth_figure, "fig13", config=figure_config)
    print()
    print(render_bandwidth_figure(fig))

    assert fig.cores[0] == 1
    # Bandwidth grows substantially with cores (near-linear for this
    # compute-bound benchmark: no controller saturation).
    assert fig.bandwidth_gbs[-1] > 8 * fig.bandwidth_gbs[0]
    # Monotone non-decreasing within noise.
    for a, b in zip(fig.bandwidth_gbs, fig.bandwidth_gbs[1:]):
        assert b > a * 0.9
    # Physically plausible magnitudes for the node (2 sockets x 42 GB/s).
    assert fig.bandwidth_gbs[-1] < 84
