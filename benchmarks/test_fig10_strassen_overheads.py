"""Fig. 10 — Strassen overhead decomposition (HPX counters).

Paper: small scheduling overheads but a visibly larger gap between the
ideal and the actual task time than Pyramids shows; speedup 11 at 20.
"""

from __future__ import annotations

from repro.experiments.figures import overhead_figure
from repro.experiments.report import render_overhead_figure

from conftest import run_once


def test_fig10_strassen_overheads(benchmark, figure_config):
    fig = run_once(benchmark, overhead_figure, "fig10", config=figure_config)
    print()
    print(render_overhead_figure(fig))

    for i in range(len(fig.cores)):
        assert fig.sched_overhead_per_core_ms[i] < 0.15 * fig.task_time_per_core_ms[i]
    # Paper: speedup 11 at 20 cores (less than Alignment's 17).
    speedup20 = fig.exec_time_ms[0] / fig.exec_time_ms[-1]
    assert 8 < speedup20 < 15
    # A real gap opens between actual and ideal task time at 20 cores.
    assert fig.task_time_per_core_ms[-1] > 1.02 * fig.ideal_task_time_ms[-1]
