"""Fig. 11 — FFT overhead decomposition (HPX counters).

Paper: very fine grain — scheduling overheads are *equivalent to the
task time*, and both increase significantly beyond the socket boundary,
limiting scaling to one socket.
"""

from __future__ import annotations

from repro.experiments.figures import overhead_figure
from repro.experiments.report import render_overhead_figure

from conftest import run_once


def _at(fig, cores):
    return fig.cores.index(cores)


def test_fig11_fft_overheads(benchmark, figure_config):
    fig = run_once(benchmark, overhead_figure, "fig11", config=figure_config)
    print()
    print(render_overhead_figure(fig))

    # Scheduling overhead is comparable to the task time itself.
    i1 = _at(fig, 1)
    ratio = fig.sched_overhead_per_core_ms[i1] / fig.task_time_per_core_ms[i1]
    assert 0.4 < ratio < 2.0, f"sched/task ratio {ratio:.2f} not 'equivalent'"
    # Beyond the socket boundary overhead per core grows.
    i10, i20 = _at(fig, 10), _at(fig, 20)
    assert fig.sched_overhead_per_core_ms[i20] > fig.sched_overhead_per_core_ms[i10] * 0.8
    # Execution stops improving past the boundary.
    assert fig.exec_time_ms[i20] >= fig.exec_time_ms[i10] * 0.9
