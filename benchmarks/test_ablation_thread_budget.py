"""Ablation: the std::async memory budget vs the failure pattern.

DESIGN.md §6 scales the paper's 62 GiB / ~90 k-thread budget down to
3,000 live threads to match the ~30x smaller benchmark inputs.  This
bench sweeps that single constant and shows the Table V failure set is
a *budget-threshold* phenomenon, not hard-coded: generous budgets let
everything finish; tight budgets kill progressively more benchmarks in
live-footprint order (fib and nqueens blow up first, the loop-like
coarse benchmarks never do).
"""

from __future__ import annotations

from dataclasses import replace

from repro.api import Session
from repro.experiments.config import ExperimentConfig, default_std_params

from conftest import run_once

PROBES = ("fib", "nqueens", "health", "uts", "sort", "alignment", "round")


def _failures(thread_budget: int) -> set[str]:
    base = default_std_params()
    config = ExperimentConfig(
        std=replace(base, ram_budget_bytes=thread_budget * base.thread_commit_bytes)
    )
    session = Session(runtime="std", cores=20, config=config)
    failed = set()
    for name in PROBES:
        result = session.run(name)
        if result.aborted:
            failed.add(name)
    return failed


def test_thread_budget_sweep(benchmark):
    def measure():
        return {budget: _failures(budget) for budget in (1_000, 3_000, 50_000)}

    by_budget = run_once(benchmark, measure)
    print()
    for budget, failed in by_budget.items():
        print(f"  budget {budget:6d} live threads -> fail: {sorted(failed) or '(none)'}")

    # The paper's configuration: exactly the Table V failure set.
    assert by_budget[3_000] == {"fib", "nqueens", "health", "uts"}
    # Failures are monotone in the budget ...
    assert by_budget[3_000] <= by_budget[1_000]
    # ... a generous budget lets every probe complete ...
    assert by_budget[50_000] == set()
    # ... and the coarse loop-like benchmarks never fail.
    assert "alignment" not in by_budget[1_000]
    assert "round" not in by_budget[1_000]
