"""Fig. 4 — Sort execution time, HPX vs C++11 Standard.

Paper: variable/fine grain (~52 us); HPX scales to 16 cores while the
Standard version only scales to 10 and runs far slower in absolute
terms (thread creation on every merge/sort task).
"""

from __future__ import annotations

from repro.experiments.figures import execution_time_figure
from repro.experiments.report import render_execution_time_figure

from conftest import run_once


def test_fig4_sort(benchmark, figure_config):
    fig = run_once(benchmark, execution_time_figure, "fig4", config=figure_config)
    print()
    print(render_execution_time_figure(fig))

    assert all(not p.aborted for p in fig.hpx.points)
    assert all(not p.aborted for p in fig.std.points)
    # HPX is faster in absolute terms at every core count.
    for p_hpx, p_std in zip(fig.hpx.points, fig.std.points):
        assert p_hpx.median_exec_ns < p_std.median_exec_ns
    # HPX keeps improving past the 10-core socket boundary (to ~16).
    assert fig.hpx.point(16).median_exec_ns < fig.hpx.point(10).median_exec_ns
    # Beyond 16 the curve is flat (no meaningful further gain).
    t16 = fig.hpx.point(16).median_exec_ns
    t20 = fig.hpx.point(20).median_exec_ns
    assert t20 > t16 * 0.9
