"""Fig. 1 — Alignment execution time, HPX vs C++11 Standard.

Paper: coarse-grained (~2.7 ms tasks); *both* libraries scale well all
the way to 20 cores and their curves nearly coincide (scheduling
overhead is negligible against the task size).
"""

from __future__ import annotations

from repro.experiments.figures import execution_time_figure
from repro.experiments.report import render_execution_time_figure

from conftest import run_once


def test_fig1_alignment(benchmark, figure_config):
    fig = run_once(benchmark, execution_time_figure, "fig1", config=figure_config)
    print()
    print(render_execution_time_figure(fig))

    assert fig.benchmark == "alignment"
    # Both complete everywhere.
    assert all(not p.aborted for p in fig.hpx.points)
    assert all(not p.aborted for p in fig.std.points)
    # Both scale strongly to 20 cores (paper: ~17x for HPX).
    assert fig.hpx.speedup(20) > 12
    assert fig.std.speedup(20) > 12
    assert fig.hpx.scales_to() == "to 20"
    assert fig.std.scales_to() == "to 20"
    # The curves nearly coincide: coarse grain hides the runtime cost.
    for cores in (1, 4, 10, 20):
        hpx_t = fig.hpx.point(cores).median_exec_ns
        std_t = fig.std.point(cores).median_exec_ns
        assert 0.65 < hpx_t / std_t < 1.5
