"""Fig. 9 — Pyramids overhead decomposition (HPX counters).

Paper: low scheduling overheads; speedup 13 at 20 cores.
"""

from __future__ import annotations

from repro.experiments.figures import overhead_figure
from repro.experiments.report import render_overhead_figure

from conftest import run_once


def test_fig9_pyramids_overheads(benchmark, figure_config):
    fig = run_once(benchmark, overhead_figure, "fig9", config=figure_config)
    print()
    print(render_overhead_figure(fig))

    for i in range(len(fig.cores)):
        assert fig.sched_overhead_per_core_ms[i] < 0.10 * fig.task_time_per_core_ms[i]
    # Paper: speedup 13 at 20 cores.
    speedup20 = fig.exec_time_ms[0] / fig.exec_time_ms[-1]
    assert 10 < speedup20 < 17
