"""Fig. 8 — Alignment overhead decomposition (HPX counters).

Paper: scheduling overheads are tiny against the coarse tasks, the
execution time is composed almost entirely of task time, and scaling
tracks the ideal closely (speedup 17 at 20 cores).
"""

from __future__ import annotations

from repro.experiments.figures import overhead_figure
from repro.experiments.report import render_overhead_figure

from conftest import run_once


def test_fig8_alignment_overheads(benchmark, figure_config):
    fig = run_once(benchmark, overhead_figure, "fig8", config=figure_config)
    print()
    print(render_overhead_figure(fig))

    for i, cores in enumerate(fig.cores):
        # Scheduling overhead is a tiny fraction of task time.
        assert fig.sched_overhead_per_core_ms[i] < 0.05 * fig.task_time_per_core_ms[i]
        # Execution time is essentially all task time.
        assert fig.exec_time_ms[i] < 1.35 * fig.task_time_per_core_ms[i]
    # Near-ideal scaling (paper: 17x at 20 cores).
    speedup20 = fig.exec_time_ms[0] / fig.exec_time_ms[-1]
    assert speedup20 > 13
    # Task time per core tracks its ideal.
    assert fig.task_time_per_core_ms[-1] < 1.4 * fig.ideal_task_time_ms[-1]
