"""Shared configuration for the reproduction benchmarks.

Every ``benchmarks/test_*`` module regenerates one table or figure of
the paper and asserts its *shape* (who wins, by roughly what factor,
where the knees fall) — not absolute numbers, which belong to the
authors' hardware.

pytest-benchmark is used in pedantic single-shot mode: each experiment
is a deterministic simulation, so repeating it buys nothing but time.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig

#: Core grid used by the scaling figures (the paper uses 1..20 in 2s).
FIGURE_CORES = (1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20)

#: Cheaper grid for the heavy full-suite tables.
TABLE_CORES = (1, 2, 4, 8, 10, 16, 20)


@pytest.fixture(scope="session")
def figure_config() -> ExperimentConfig:
    return ExperimentConfig(samples=1, core_counts=FIGURE_CORES)


@pytest.fixture(scope="session")
def table_config() -> ExperimentConfig:
    return ExperimentConfig(samples=1, core_counts=TABLE_CORES)


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
