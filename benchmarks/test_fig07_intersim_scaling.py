"""Fig. 7 — Intersim execution time, HPX vs C++11 Standard.

Paper: ~3.5 us grain with multiple mutexes per task; HPX shows limited
scaling (to ~10) while the Standard version *degrades* with added cores
(every contended lock is a futex round trip; every task a pthread).
"""

from __future__ import annotations

from repro.experiments.figures import execution_time_figure
from repro.experiments.report import render_execution_time_figure

from conftest import run_once


def test_fig7_intersim(benchmark, figure_config):
    fig = run_once(benchmark, execution_time_figure, "fig7", config=figure_config)
    print()
    print(render_execution_time_figure(fig))

    assert all(not p.aborted for p in fig.hpx.points)
    assert all(not p.aborted for p in fig.std.points)
    # HPX is far faster in absolute terms at every core count.
    for p_hpx, p_std in zip(fig.hpx.points, fig.std.points):
        assert p_hpx.median_exec_ns < p_std.median_exec_ns
    # The Standard version shows essentially no scaling.
    assert fig.std.speedup(20) < 3
    # HPX scales moderately, peaking by the socket boundary region.
    best = min(fig.hpx.points, key=lambda p: p.median_exec_ns)
    assert best.cores <= 12
    assert 4 < fig.hpx.speedup(best.cores) < 12
