"""Fig. 6 — UTS execution time, HPX vs C++11 Standard.

Paper: ~1 us grain; HPX scales until the socket boundary at 10 cores
and degrades past it; the Standard version runs out of resources and
fails (80k-97k pthreads live just before the failure).
"""

from __future__ import annotations

from repro.experiments.figures import execution_time_figure
from repro.experiments.report import render_execution_time_figure

from conftest import run_once


def test_fig6_uts(benchmark, figure_config):
    fig = run_once(benchmark, execution_time_figure, "fig6", config=figure_config)
    print()
    print(render_execution_time_figure(fig))

    # The Standard version fails at every core count: the spawned
    # frontier exceeds the (scaled) memory budget regardless of cores.
    assert all(p.aborted for p in fig.std.points), "std UTS should abort"
    # HPX completes everywhere and scales to the socket boundary.
    assert all(not p.aborted for p in fig.hpx.points)
    assert fig.hpx.speedup(10) > 8
    # Past the boundary: no further improvement (degradation allowed).
    t10 = fig.hpx.point(10).median_exec_ns
    t20 = fig.hpx.point(20).median_exec_ns
    assert t20 > t10 * 0.85
