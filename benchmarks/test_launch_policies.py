"""Launch-policy comparison (Section V-B / Table IV).

"The original Inncabs benchmarks can be run with any of three launch
policies (async, deferred, or optional) ... HPX options includes these
launch policies and a new policy, fork ... We compared performance of
all launch policies for both Standard and HPX versions of the
benchmarks and found the async policy provides the best performance."

This bench reruns that comparison on a fork/join tree:

- ``async`` and ``fork`` parallelize (fork = continuation stealing,
  intended for exactly this strict fork/join shape);
- ``deferred`` serializes completely (children run inline at the first
  ``get()``), so it cannot beat one core no matter the worker count;
- ``sync`` is inline by construction, equally serial.
"""

from __future__ import annotations

from repro.kernel.scheduler import StdRuntime
from repro.runtime.scheduler import HpxRuntime
from repro.simcore.events import Engine
from repro.simcore.machine import Machine

from conftest import run_once

POLICIES = ("async", "fork", "deferred", "sync")


# A fine-grained tree would let std's *deferred* win (serial execution
# avoids the 18 us thread creations entirely); the paper's benchmarks
# are mostly fine-to-coarse, so the comparison uses a moderate ~50 us
# grain where parallel execution pays for both runtimes.
def _fib_policy(ctx, n: int, policy: str):
    if n < 2:
        yield ctx.compute(55_000)
        return n
    fa = yield ctx.async_(_fib_policy, n - 1, policy, policy=policy)
    fb = yield ctx.async_(_fib_policy, n - 2, policy, policy=policy)
    a = yield ctx.wait(fa)
    b = yield ctx.wait(fb)
    yield ctx.compute(40_000, membytes=2048)
    return a + b


def _time_policy(runtime_cls, policy: str, cores: int, n: int = 13) -> int:
    engine = Engine()
    rt = runtime_cls(engine, Machine(), num_workers=cores)
    value = rt.run_to_completion(_fib_policy, n, policy)
    assert value == 233
    return engine.now


def test_launch_policy_comparison(benchmark):
    def measure():
        out: dict[str, dict[str, int]] = {}
        for runtime_cls, label in ((HpxRuntime, "hpx"), (StdRuntime, "std")):
            out[label] = {policy: _time_policy(runtime_cls, policy, cores=8) for policy in POLICIES}
        return out

    times = run_once(benchmark, measure)
    print()
    for label, rows in times.items():
        for policy, t in rows.items():
            print(f"  {label:4s} {policy:9s} {t/1e6:8.3f} ms")

    for label in ("hpx", "std"):
        rows = times[label]
        # The paper's conclusion: async is the fastest policy.
        assert rows["async"] == min(rows.values())
        # deferred/sync serialize: far slower than async on 8 cores.
        assert rows["deferred"] > 3 * rows["async"]
        assert rows["sync"] > 3 * rows["async"]
    # fork (continuation stealing) is competitive with async on a
    # strict fork/join tree — within 25%.
    assert times["hpx"]["fork"] < times["hpx"]["async"] * 1.25
