"""Fig. 3 — Strassen execution time, HPX vs C++11 Standard.

Paper: fine grain (~100 us); HPX scales well (speedup 11 at 20 cores),
the Standard version is slower and does not run for some experiments.
"""

from __future__ import annotations

from repro.experiments.figures import execution_time_figure
from repro.experiments.report import render_execution_time_figure

from conftest import run_once


def test_fig3_strassen(benchmark, figure_config):
    fig = run_once(benchmark, execution_time_figure, "fig3", config=figure_config)
    print()
    print(render_execution_time_figure(fig))

    assert all(not p.aborted for p in fig.hpx.points)
    # Paper: speedup reaches a factor of 11 at 20 cores.
    assert 8 < fig.hpx.speedup(20) < 15
    # HPX beats the Standard version at every core count.
    for p_hpx, p_std in zip(fig.hpx.points, fig.std.points):
        if not p_std.aborted:
            assert p_hpx.median_exec_ns < p_std.median_exec_ns
