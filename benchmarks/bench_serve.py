#!/usr/bin/env python3
"""Run-server load harness — standalone entry point.

Thin wrapper over ``repro bench-serve`` so the load test can run without
installing the package::

    python benchmarks/bench_serve.py --mode quick --out BENCH_serve.json \
        --baseline results/baseline_serve.json

Spawns one ``repro serve`` process, floods it from dozens of concurrent
clients with hundreds of queued runs (80% unique, 20% cache-hot), and
reports p50/p99 submit-to-result latency plus cache-hit throughput,
gated against the committed baseline on machine-transferable ratios.
See :mod:`repro.experiments.bench_serve`.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["bench-serve", *sys.argv[1:]]))
