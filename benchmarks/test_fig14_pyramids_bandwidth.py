"""Fig. 14 — Pyramids OFFCORE bandwidth (moderate-grained tasks).

The stencil streams real grid data: per-core demand is higher than
Alignment's, so the per-socket controller shows visible contention by
the middle of the first socket and the second socket's controller adds
headroom past 10 cores.
"""

from __future__ import annotations

from repro.experiments.figures import bandwidth_figure
from repro.experiments.report import render_bandwidth_figure

from conftest import run_once


def test_fig14_pyramids_bandwidth(benchmark, figure_config):
    fig = run_once(benchmark, bandwidth_figure, "fig14", config=figure_config)
    print()
    print(render_bandwidth_figure(fig))

    assert fig.cores[0] == 1
    # Bandwidth rises with cores.
    assert fig.bandwidth_gbs[-1] > 4 * fig.bandwidth_gbs[0]
    # Sub-linear by 20 cores: scaling efficiency of the bandwidth curve
    # drops below 80% (contention + the locality profile).
    per_core_1 = fig.bandwidth_gbs[0]
    per_core_20 = fig.bandwidth_gbs[-1] / fig.cores[-1]
    assert per_core_20 < per_core_1 * 1.1
    assert fig.bandwidth_gbs[-1] < 84
