"""Table I — TAU and HPCToolkit on the std::async Inncabs versions.

Paper pattern at full concurrency (20 cores):

- the uninstrumented baseline itself aborts for the recursive
  fine-grained benchmarks (Fib, NQueens, UTS, ... run out of memory for
  pthreads);
- TAU kills nearly every benchmark (SegV once its fixed thread table
  overflows);
- HPCToolkit either crashes or completes with orders-of-magnitude
  overhead (the paper reports 3,505%-12,706% where it completes).
"""

from __future__ import annotations

from repro.experiments.tables import table1
from repro.experiments.report import render_table1
from repro.tools import ToolOutcome

from conftest import run_once


def test_table1(benchmark):
    rows = run_once(benchmark, table1, cores=20)
    print()
    print(render_table1(rows))

    by_name = {r.benchmark: r for r in rows}
    assert len(rows) == 14

    # Baseline failures: the paper's four memory-explosion benchmarks.
    baseline_failures = {r.benchmark for r in rows if r.baseline_ms is None}
    assert baseline_failures == {"fib", "health", "nqueens", "uts"}

    # TAU: dies everywhere except where thread counts are tiny.
    tau_survivors = {r.benchmark for r in rows if r.tau.outcome is ToolOutcome.COMPLETED}
    assert tau_survivors <= {"alignment"}
    for r in rows:
        if r.benchmark not in tau_survivors:
            assert r.tau.outcome in (ToolOutcome.SEGV, ToolOutcome.ABORT, ToolOutcome.TIMEOUT)

    # HPCToolkit: completes only with enormous overhead, else crashes.
    for r in rows:
        if r.hpctoolkit.outcome is ToolOutcome.COMPLETED and r.baseline_ms:
            overhead = r.hpctoolkit.overhead_percent(round(r.baseline_ms * 1e6))
            assert overhead is not None and overhead > 200, (
                f"{r.benchmark}: HPCToolkit overhead {overhead}% implausibly low"
            )
    hpct_crashes = sum(r.hpctoolkit.outcome is not ToolOutcome.COMPLETED for r in rows)
    assert hpct_crashes >= 4  # the thread-explosion benchmarks at least
