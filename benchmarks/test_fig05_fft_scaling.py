"""Fig. 5 — FFT execution time, HPX vs C++11 Standard.

Paper: ~1 us grain, very fine; HPX shows limited scaling (to ~6) and
the Standard version's execution times are much greater — scheduling
and context-switch costs are a large multiple of the task size.
"""

from __future__ import annotations

from repro.experiments.figures import execution_time_figure
from repro.experiments.report import render_execution_time_figure

from conftest import run_once


def test_fig5_fft(benchmark, figure_config):
    fig = run_once(benchmark, execution_time_figure, "fig5", config=figure_config)
    print()
    print(render_execution_time_figure(fig))

    assert all(not p.aborted for p in fig.hpx.points)
    # Standard times are much greater (paper: order of magnitude).
    for cores in (1, 4, 10, 20):
        ratio = fig.std.point(cores).median_exec_ns / fig.hpx.point(cores).median_exec_ns
        assert ratio > 4, f"std only {ratio:.1f}x slower at {cores} cores"
    # Limited HPX scaling: the best point is inside the first socket or
    # just past it, and 20 cores is no better than 10.
    best_cores = min(fig.hpx.points, key=lambda p: p.median_exec_ns).cores
    assert best_cores <= 12
    assert fig.hpx.point(20).median_exec_ns >= fig.hpx.point(10).median_exec_ns * 0.95
    # Absolute speedup is modest (paper shows ~6x at best).
    assert fig.hpx.speedup(best_cores) < 10
