"""Legacy setup shim.

Kept so the package installs in offline environments that lack the
``wheel`` module required by PEP 660 editable installs
(``python setup.py develop`` works with plain setuptools).
"""

from setuptools import setup

setup()
